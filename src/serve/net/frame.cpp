#include "serve/net/frame.h"

#include <cstring>

namespace fqbert::serve::net {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. Byte-at-a-time so the codec is independent
// of host endianness and alignment.
// ---------------------------------------------------------------------------

void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<uint8_t>& out, int32_t v) {
  put_u32(out, static_cast<uint32_t>(v));
}

void put_i64(std::vector<uint8_t>& out, int64_t v) {
  put_u64(out, static_cast<uint64_t>(v));
}

void put_f32(std::vector<uint8_t>& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

/// Bounds-checked sequential reader over one payload. Every take_*
/// fails (and latches failure) instead of reading past `len`.
struct Cursor {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool ok = true;

  bool have(size_t n) {
    if (!ok || len - pos < n) ok = false;
    return ok;
  }
  uint8_t take_u8() {
    if (!have(1)) return 0;
    return data[pos++];
  }
  uint32_t take_u32() {
    if (!have(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    pos += 4;
    return v;
  }
  uint64_t take_u64() {
    if (!have(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
           << (8 * i);
    pos += 8;
    return v;
  }
  int32_t take_i32() { return static_cast<int32_t>(take_u32()); }
  int64_t take_i64() { return static_cast<int64_t>(take_u64()); }
  float take_f32() {
    const uint32_t bits = take_u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// Fully consumed and no read ever ran off the end.
  bool done() const { return ok && pos == len; }
};

/// Patch the payload_len field once the payload size is known.
void begin_frame(std::vector<uint8_t>& out, FrameType type) {
  put_u32(out, kFrameMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<uint8_t>(type));
  put_u16(out, 0);           // reserved
  put_u32(out, 0);           // payload_len, patched by end_frame
}

void end_frame(std::vector<uint8_t>& out, size_t frame_start) {
  const size_t payload = out.size() - frame_start - kHeaderSize;
  for (int i = 0; i < 4; ++i)
    out[frame_start + 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(payload >> (8 * i));
}

}  // namespace

DecodeStatus decode_header(const uint8_t* data, size_t len,
                           FrameHeader* out) {
  if (len < kHeaderSize) return DecodeStatus::kNeedMore;
  Cursor c{data, kHeaderSize};
  const uint32_t magic = c.take_u32();
  const uint8_t version = c.take_u8();
  const uint8_t type = c.take_u8();
  const uint8_t r0 = c.take_u8();
  const uint8_t r1 = c.take_u8();
  const uint32_t payload_len = c.take_u32();
  if (magic != kFrameMagic || version != kProtocolVersion || r0 != 0 ||
      r1 != 0)
    return DecodeStatus::kError;
  if (type < static_cast<uint8_t>(FrameType::kInfoRequest) ||
      type > static_cast<uint8_t>(FrameType::kServeResponse))
    return DecodeStatus::kError;
  if (payload_len > kMaxPayload) return DecodeStatus::kError;
  out->type = static_cast<FrameType>(type);
  out->payload_len = payload_len;
  return DecodeStatus::kFrame;
}

bool decode_info_response(const uint8_t* payload, size_t len,
                          WireInfo* out) {
  Cursor c{payload, len};
  nn::BertConfig& cfg = out->config;
  cfg.vocab_size = c.take_i64();
  cfg.hidden = c.take_i64();
  cfg.num_layers = c.take_i64();
  cfg.num_heads = c.take_i64();
  cfg.ffn_dim = c.take_i64();
  cfg.max_seq_len = c.take_i64();
  cfg.num_segments = c.take_i64();
  cfg.num_classes = c.take_i64();
  return c.done();
}

bool decode_serve_request(const uint8_t* payload, size_t len,
                          WireRequest* out) {
  Cursor c{payload, len};
  out->correlation_id = c.take_u64();
  out->deadline_budget_us = c.take_i64();
  const uint32_t num_tokens = c.take_u32();
  const uint32_t num_segments = c.take_u32();
  if (!c.ok || num_tokens > kMaxTokens || num_segments > kMaxTokens)
    return false;
  // A-priori size check so a lying count cannot trigger a large resize
  // before the per-element reads fail.
  if (len - c.pos != (static_cast<size_t>(num_tokens) +
                      static_cast<size_t>(num_segments)) *
                         4)
    return false;
  out->example.tokens.resize(num_tokens);
  out->example.segments.resize(num_segments);
  for (uint32_t i = 0; i < num_tokens; ++i)
    out->example.tokens[i] = c.take_i32();
  for (uint32_t i = 0; i < num_segments; ++i)
    out->example.segments[i] = c.take_i32();
  return c.done();
}

bool decode_serve_response(const uint8_t* payload, size_t len,
                           WireResponse* out) {
  Cursor c{payload, len};
  out->correlation_id = c.take_u64();
  const uint8_t status = c.take_u8();
  if (status > static_cast<uint8_t>(RequestStatus::kShutdown)) return false;
  out->response.status = static_cast<RequestStatus>(status);
  out->response.predicted = c.take_i32();
  out->response.queue_us = c.take_i64();
  out->response.latency_us = c.take_i64();
  out->response.batch_size = c.take_i32();
  const uint32_t num_logits = c.take_u32();
  if (!c.ok || num_logits > kMaxLogits) return false;
  if (len - c.pos != static_cast<size_t>(num_logits) * 4) return false;
  out->response.logits.resize(num_logits);
  for (uint32_t i = 0; i < num_logits; ++i)
    out->response.logits[i] = c.take_f32();
  return c.done();
}

void encode_info_request(std::vector<uint8_t>& out) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kInfoRequest);
  end_frame(out, start);
}

void encode_info_response(const WireInfo& info, std::vector<uint8_t>& out) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kInfoResponse);
  const nn::BertConfig& cfg = info.config;
  put_i64(out, cfg.vocab_size);
  put_i64(out, cfg.hidden);
  put_i64(out, cfg.num_layers);
  put_i64(out, cfg.num_heads);
  put_i64(out, cfg.ffn_dim);
  put_i64(out, cfg.max_seq_len);
  put_i64(out, cfg.num_segments);
  put_i64(out, cfg.num_classes);
  end_frame(out, start);
}

void encode_serve_request(const WireRequest& req, std::vector<uint8_t>& out) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kServeRequest);
  put_u64(out, req.correlation_id);
  put_i64(out, req.deadline_budget_us);
  put_u32(out, static_cast<uint32_t>(req.example.tokens.size()));
  put_u32(out, static_cast<uint32_t>(req.example.segments.size()));
  for (const int32_t tok : req.example.tokens) put_i32(out, tok);
  for (const int32_t seg : req.example.segments) put_i32(out, seg);
  end_frame(out, start);
}

void encode_serve_response(const WireResponse& resp,
                           std::vector<uint8_t>& out) {
  const size_t start = out.size();
  begin_frame(out, FrameType::kServeResponse);
  put_u64(out, resp.correlation_id);
  put_u8(out, static_cast<uint8_t>(resp.response.status));
  put_i32(out, resp.response.predicted);
  put_i64(out, resp.response.queue_us);
  put_i64(out, resp.response.latency_us);
  put_i32(out, resp.response.batch_size);
  put_u32(out, static_cast<uint32_t>(resp.response.logits.size()));
  for (const float v : resp.response.logits) put_f32(out, v);
  end_frame(out, start);
}

}  // namespace fqbert::serve::net
