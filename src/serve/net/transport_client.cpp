#include "serve/net/transport_client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace fqbert::serve::net {

namespace {

/// Connect with an optional timeout: non-blocking connect + poll, then
/// back to blocking mode. 0 on success, -1 (errno-style reason in
/// *timed_out / errno) otherwise.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t addrlen,
                         Micros timeout, bool* timed_out) {
  *timed_out = false;
  if (timeout.count() <= 0) return ::connect(fd, addr, addrlen);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    return ::connect(fd, addr, addrlen);  // degrade to blocking

  int rc = ::connect(fd, addr, addrlen);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout)
            .count());
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (ready == 0) {
      *timed_out = true;
      rc = -1;
    } else if (ready < 0) {
      rc = -1;
    } else {
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        errno = err;
        rc = -1;
      } else {
        rc = 0;
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // restore blocking mode
  return rc;
}

}  // namespace

TransportClient::~TransportClient() { close(); }

void TransportClient::close() {
  MutexLock lock(fd_mu_);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void TransportClient::shutdown_socket() {
  MutexLock lock(fd_mu_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool TransportClient::fail(ClientError kind, const std::string& message) {
  error_ = message;
  error_kind_ = kind;
  close();
  return false;
}

bool TransportClient::connect(const std::string& host, uint16_t port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return fail(ClientError::kConnect, "cannot resolve " + host);
  int fd = -1;
  bool timed_out = false;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen,
                             connect_timeout_, &timed_out) == 0)
      break;
    ::close(fd);
    fd = -1;
    if (timed_out) break;  // don't pay the timeout once per address
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (timed_out)
      return fail(ClientError::kTimedOut,
                  "connect to " + host + ":" + port_str + " timed out");
    return fail(ClientError::kConnect, "cannot connect to " + host + ":" +
                                           port_str + ": " +
                                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_.count() > 0) {
    // Backstop only: the whole-frame deadline in recv_frame gates each
    // recv() with poll(), so this per-recv timer normally never fires.
    // It exists for the rare spurious-readiness wakeup, where a recv()
    // after POLLIN would otherwise block past the deadline.
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_.count() / 1'000'000);
    tv.tv_usec = static_cast<suseconds_t>(recv_timeout_.count() % 1'000'000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  {
    MutexLock lock(fd_mu_);
    fd_.store(fd, std::memory_order_release);
  }
  error_.clear();
  error_kind_ = ClientError::kNone;
  return true;
}

bool TransportClient::send_all(const std::vector<uint8_t>& bytes) {
  return send_all(bytes.data(), bytes.size());
}

bool TransportClient::send_all(const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_.load(std::memory_order_acquire), data + sent,
                             len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(ClientError::kIo,
                std::string("send failed: ") + std::strerror(errno));
  }
  return true;
}

bool TransportClient::recv_exact(uint8_t* out, size_t n,
                                 TimePoint deadline) {
  size_t got = 0;
  while (got < n) {
    if (deadline != TimePoint{}) {
      // The deadline spans the whole frame, so a peer trickling one
      // byte per interval cannot reset the budget: wait only for the
      // time remaining, then recv whatever arrived. The wait is
      // rounded UP to a millisecond — truncation would burn the final
      // sub-ms of any budget (and all of a 1 ms budget) without ever
      // polling, timing out on data already sitting in the buffer.
      const int64_t remaining_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              deadline - Clock::now())
              .count();
      if (remaining_us <= 0)
        return fail(ClientError::kTimedOut,
                    "receive timed out mid-frame; connection closed");
      const int timeout_ms = static_cast<int>(
          std::min<int64_t>((remaining_us + 999) / 1000, 3'600'000));
      pollfd pfd{fd_.load(std::memory_order_acquire), POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready == 0)
        return fail(ClientError::kTimedOut,
                    "receive timed out mid-frame; connection closed");
      if (ready < 0) {
        if (errno == EINTR) continue;
        return fail(ClientError::kIo,
                    std::string("poll failed: ") + std::strerror(errno));
      }
    }
    const ssize_t r =
        ::recv(fd_.load(std::memory_order_acquire), out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0)
      return fail(ClientError::kClosed, "connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return fail(ClientError::kTimedOut, "receive timed out");
    return fail(ClientError::kIo,
                std::string("recv failed: ") + std::strerror(errno));
  }
  return true;
}

bool TransportClient::recv_frame(FrameHeader* hdr,
                                 std::vector<uint8_t>& payload) {
  // One budget for the entire frame: started when we begin waiting for
  // the header, charged across header AND payload reads.
  const TimePoint deadline = recv_timeout_.count() > 0
                                 ? Clock::now() + recv_timeout_
                                 : TimePoint{};
  uint8_t header[kHeaderSize];
  if (!recv_exact(header, kHeaderSize, deadline)) return false;
  if (decode_header(header, kHeaderSize, hdr) != DecodeStatus::kFrame)
    return fail(ClientError::kProtocol, "malformed frame header from server");
  payload.resize(hdr->payload_len);
  return payload.empty() ||
         recv_exact(payload.data(), payload.size(), deadline);
}

bool TransportClient::send_raw(const std::vector<uint8_t>& frames) {
  return send_raw(frames.data(), frames.size());
}

bool TransportClient::send_raw(const uint8_t* data, size_t len) {
  if (!require_connected(/*needs_v2=*/false)) return false;
  return send_all(data, len);
}

bool TransportClient::recv_raw(FrameHeader* hdr,
                               std::vector<uint8_t>& payload) {
  if (!require_connected(/*needs_v2=*/false)) return false;
  return recv_frame(hdr, payload);
}

bool TransportClient::recv_expected(FrameType expect,
                                    std::vector<uint8_t>& payload,
                                    std::string* admin_failure) {
  FrameHeader hdr;
  if (!recv_frame(&hdr, payload)) return false;
  if (hdr.type == expect) return true;
  if (hdr.type == FrameType::kAdminResponse && admin_failure != nullptr) {
    // In-band application failure (e.g. unknown model): connection
    // stays usable; the caller gets the server's message.
    bool ok = false;
    std::string message;
    if (!decode_admin_response(payload.data(), payload.size(), &ok,
                               &message))
      return fail(ClientError::kProtocol,
                  "malformed admin payload from server");
    *admin_failure = message;
    error_ = message;
    error_kind_ = ClientError::kNone;  // not a transport failure
    return false;
  }
  return fail(ClientError::kProtocol, "unexpected frame type from server");
}

bool TransportClient::require_connected(bool needs_v2) {
  if (!connected()) {
    error_ = "not connected";
    error_kind_ = ClientError::kIo;
    return false;
  }
  if (needs_v2 && version_ < 2) {
    error_ = "operation requires protocol v2";
    error_kind_ = ClientError::kProtocol;
    return false;
  }
  return true;
}

bool TransportClient::require_str_fits(const std::string& value,
                                       uint32_t cap, const char* what) {
  if (value.size() <= cap) return true;
  error_ = std::string(what) + " exceeds the wire limit of " +
           std::to_string(cap) + " bytes";
  error_kind_ = ClientError::kProtocol;
  return false;
}

bool TransportClient::require_tier_fits(uint8_t tier) {
  if (tier == 0) return true;
  if (version_ < 4) {
    error_ = "tier selection requires protocol v4";
    error_kind_ = ClientError::kProtocol;
    return false;
  }
  if (!wire_tier_valid(tier)) {
    error_ = "tier must be a weight bit-width in [2, 8]";
    error_kind_ = ClientError::kProtocol;
    return false;
  }
  return true;
}

bool TransportClient::admin_roundtrip(const std::vector<uint8_t>& frame,
                                      std::string* message) {
  if (!send_all(frame)) return false;
  std::vector<uint8_t> payload;
  if (!recv_expected(FrameType::kAdminResponse, payload)) return false;
  bool ok = false;
  std::string msg;
  if (!decode_admin_response(payload.data(), payload.size(), &ok, &msg))
    return fail(ClientError::kProtocol, "malformed admin payload from server");
  if (message) *message = msg;
  if (!ok) {
    error_ = msg;
    error_kind_ = ClientError::kNone;  // server-side admin failure
  }
  return ok;
}

std::optional<nn::BertConfig> TransportClient::query_info(
    const std::string& model, uint8_t tier) {
  // A v1 client cannot put the model name on the wire; silently asking
  // for the default instead would hand back the wrong shape. Same for a
  // pre-v4 client and a tier.
  if (!require_connected(/*needs_v2=*/!model.empty())) return std::nullopt;
  if (!require_tier_fits(tier)) return std::nullopt;
  if (!require_str_fits(model, kMaxNameLen, "model name"))
    return std::nullopt;
  std::vector<uint8_t> frame;
  encode_info_request(model, frame, version_, tier);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  std::string admin_failure;
  if (!recv_expected(FrameType::kInfoResponse, payload, &admin_failure))
    return std::nullopt;
  WireInfo info;
  if (!decode_info_response(payload.data(), payload.size(), version_,
                            &info)) {
    fail(ClientError::kProtocol, "malformed info payload from server");
    return std::nullopt;
  }
  return info.config;
}

std::optional<ServeResponse> TransportClient::call(
    const nn::Example& example, std::optional<Micros> deadline_budget,
    const std::string& model, uint64_t trace_id, uint8_t tier) {
  if (!require_connected(/*needs_v2=*/!model.empty())) return std::nullopt;
  if (!require_tier_fits(tier)) return std::nullopt;
  if (!require_str_fits(model, kMaxNameLen, "model name"))
    return std::nullopt;
  WireRequest req;
  req.correlation_id = next_correlation_++;
  req.deadline_budget_us = deadline_budget ? deadline_budget->count() : 0;
  req.trace_id = version_ >= 3 ? trace_id : 0;
  req.tier = tier;
  req.model = model;
  req.example = example;
  std::vector<uint8_t> frame;
  encode_serve_request(req, frame, version_);
  if (!send_all(frame)) return std::nullopt;

  std::vector<uint8_t> payload;
  if (!recv_expected(FrameType::kServeResponse, payload))
    return std::nullopt;
  WireResponse wire;
  if (!decode_serve_response(payload.data(), payload.size(), version_,
                             &wire)) {
    fail(ClientError::kProtocol, "malformed response payload from server");
    return std::nullopt;
  }
  // Synchronous protocol: one request in flight per connection, so a
  // mismatched id means the server answered some other request.
  if (wire.correlation_id != req.correlation_id) {
    fail(ClientError::kProtocol, "correlation id mismatch from server");
    return std::nullopt;
  }
  return wire.response;
}

bool TransportClient::load_model(const std::string& name,
                                 const std::string& path,
                                 std::string* message, uint8_t tier) {
  if (!require_connected(/*needs_v2=*/true)) return false;
  if (!require_tier_fits(tier)) return false;
  if (!require_str_fits(name, kMaxNameLen, "model name") ||
      !require_str_fits(path, kMaxPathLen, "engine path"))
    return false;
  std::vector<uint8_t> frame;
  encode_load_model(name, path, frame, version_, tier);
  return admin_roundtrip(frame, message);
}

bool TransportClient::unload_model(const std::string& name,
                                   std::string* message, uint8_t tier) {
  if (!require_connected(/*needs_v2=*/true)) return false;
  if (!require_tier_fits(tier)) return false;
  if (!require_str_fits(name, kMaxNameLen, "model name")) return false;
  std::vector<uint8_t> frame;
  encode_unload_model(name, frame, version_, tier);
  return admin_roundtrip(frame, message);
}

std::optional<std::vector<std::string>> TransportClient::list_models() {
  const std::optional<std::vector<WireModelEntry>> entries =
      list_models_tiered();
  if (!entries) return std::nullopt;
  std::vector<std::string> names;
  for (const WireModelEntry& entry : *entries)
    if (names.empty() || names.back() != entry.name)
      names.push_back(entry.name);  // tiers of one model are adjacent
  return names;
}

std::optional<std::vector<WireModelEntry>>
TransportClient::list_models_tiered() {
  if (!require_connected(/*needs_v2=*/true)) return std::nullopt;
  std::vector<uint8_t> frame;
  encode_list_models(frame, version_);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  if (!recv_expected(FrameType::kModelList, payload)) return std::nullopt;
  std::vector<WireModelEntry> entries;
  if (!decode_model_list(payload.data(), payload.size(), version_,
                         &entries)) {
    fail(ClientError::kProtocol, "malformed model list from server");
    return std::nullopt;
  }
  return entries;
}

std::optional<WireStats> TransportClient::query_stats(
    const std::string& model, uint8_t tier) {
  if (!require_connected(/*needs_v2=*/true)) return std::nullopt;
  if (!require_tier_fits(tier)) return std::nullopt;
  if (!require_str_fits(model, kMaxNameLen, "model name"))
    return std::nullopt;
  std::vector<uint8_t> frame;
  encode_stats_request(model, frame, version_, tier);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  std::string admin_failure;
  if (!recv_expected(FrameType::kStatsResponse, payload, &admin_failure))
    return std::nullopt;
  WireStats stats;
  if (!decode_stats_response(payload.data(), payload.size(), version_,
                             &stats)) {
    fail(ClientError::kProtocol, "malformed stats payload from server");
    return std::nullopt;
  }
  return stats;
}

bool TransportClient::require_v5(const char* what) {
  if (version_ >= 5) return true;
  error_ = std::string(what) + " requires protocol v5";
  error_kind_ = ClientError::kProtocol;
  return false;
}

bool TransportClient::add_backend(const std::string& host, uint16_t port,
                                  const std::vector<WireModelEntry>& models,
                                  std::string* message) {
  if (!require_connected(/*needs_v2=*/true)) return false;
  if (!require_v5("ADD_BACKEND")) return false;
  if (!require_str_fits(host, kMaxNameLen, "backend host")) return false;
  if (models.empty()) {
    error_ = "ADD_BACKEND requires at least one (model, tier) cell";
    error_kind_ = ClientError::kProtocol;
    return false;
  }
  for (const WireModelEntry& entry : models) {
    if (!require_str_fits(entry.name, kMaxNameLen, "model name"))
      return false;
    if (!wire_tier_valid(entry.tier)) {
      error_ = "tier must be 0 or a weight bit-width in [2, 8]";
      error_kind_ = ClientError::kProtocol;
      return false;
    }
  }
  std::vector<uint8_t> frame;
  encode_add_backend(host, port, models, frame, version_);
  return admin_roundtrip(frame, message);
}

bool TransportClient::remove_backend(const std::string& address,
                                     std::string* message) {
  if (!require_connected(/*needs_v2=*/true)) return false;
  if (!require_v5("REMOVE_BACKEND")) return false;
  if (!require_str_fits(address, kMaxNameLen, "backend address"))
    return false;
  std::vector<uint8_t> frame;
  encode_remove_backend(address, frame, version_);
  return admin_roundtrip(frame, message);
}

bool TransportClient::move_model(const std::string& model, uint8_t tier,
                                 const std::string& from,
                                 const std::string& to,
                                 const std::string& path,
                                 std::string* message) {
  if (!require_connected(/*needs_v2=*/true)) return false;
  if (!require_v5("MOVE_MODEL")) return false;
  if (!require_str_fits(model, kMaxNameLen, "model name") ||
      !require_str_fits(from, kMaxNameLen, "source backend address") ||
      !require_str_fits(to, kMaxNameLen, "target backend address") ||
      !require_str_fits(path, kMaxPathLen, "engine path"))
    return false;
  if (!wire_tier_valid(tier)) {
    error_ = "tier must be 0 or a weight bit-width in [2, 8]";
    error_kind_ = ClientError::kProtocol;
    return false;
  }
  std::vector<uint8_t> frame;
  encode_move_model(model, tier, from, to, path, frame, version_);
  return admin_roundtrip(frame, message);
}

std::optional<WirePlacement> TransportClient::get_placement() {
  if (!require_connected(/*needs_v2=*/true)) return std::nullopt;
  if (!require_v5("GET_PLACEMENT")) return std::nullopt;
  std::vector<uint8_t> frame;
  encode_get_placement(frame, version_);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  std::string admin_failure;
  if (!recv_expected(FrameType::kPlacement, payload, &admin_failure))
    return std::nullopt;
  WirePlacement placement;
  if (!decode_placement(payload.data(), payload.size(), &placement)) {
    fail(ClientError::kProtocol, "malformed placement payload from server");
    return std::nullopt;
  }
  return placement;
}

std::optional<std::vector<WireEvent>> TransportClient::dump_events(
    uint64_t since_ns, uint32_t max_events) {
  if (!require_connected(/*needs_v2=*/true)) return std::nullopt;
  std::vector<uint8_t> frame;
  encode_dump_events(since_ns, max_events, frame, version_);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  std::string admin_failure;
  if (!recv_expected(FrameType::kEventDump, payload, &admin_failure))
    return std::nullopt;
  std::vector<WireEvent> events;
  if (!decode_event_dump(payload.data(), payload.size(), &events)) {
    fail(ClientError::kProtocol, "malformed event dump from server");
    return std::nullopt;
  }
  return events;
}

}  // namespace fqbert::serve::net
