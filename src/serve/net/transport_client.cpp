#include "serve/net/transport_client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fqbert::serve::net {

TransportClient::~TransportClient() { close(); }

void TransportClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TransportClient::fail(const std::string& message) {
  error_ = message;
  close();
  return false;
}

bool TransportClient::connect(const std::string& host, uint16_t port) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr)
    return fail("cannot resolve " + host);
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    return fail("cannot connect to " + host + ":" + port_str + ": " +
                std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  error_.clear();
  return true;
}

bool TransportClient::send_all(const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(std::string("send failed: ") + std::strerror(errno));
  }
  return true;
}

bool TransportClient::recv_frame(FrameType expect,
                                 std::vector<uint8_t>& payload) {
  uint8_t header[kHeaderSize];
  size_t got = 0;
  while (got < kHeaderSize) {
    const ssize_t n = ::recv(fd_, header + got, kHeaderSize - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(n == 0 ? "connection closed by server"
                       : std::string("recv failed: ") +
                             std::strerror(errno));
  }
  FrameHeader hdr;
  if (decode_header(header, kHeaderSize, &hdr) != DecodeStatus::kFrame)
    return fail("malformed frame header from server");
  if (hdr.type != expect) return fail("unexpected frame type from server");
  payload.resize(hdr.payload_len);
  got = 0;
  while (got < payload.size()) {
    const ssize_t n =
        ::recv(fd_, payload.data() + got, payload.size() - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(n == 0 ? "connection closed mid-frame"
                       : std::string("recv failed: ") +
                             std::strerror(errno));
  }
  return true;
}

std::optional<nn::BertConfig> TransportClient::query_info() {
  if (!connected()) {
    error_ = "not connected";
    return std::nullopt;
  }
  std::vector<uint8_t> frame;
  encode_info_request(frame);
  if (!send_all(frame)) return std::nullopt;
  std::vector<uint8_t> payload;
  if (!recv_frame(FrameType::kInfoResponse, payload)) return std::nullopt;
  WireInfo info;
  if (!decode_info_response(payload.data(), payload.size(), &info)) {
    fail("malformed info payload from server");
    return std::nullopt;
  }
  return info.config;
}

std::optional<ServeResponse> TransportClient::call(
    const nn::Example& example, std::optional<Micros> deadline_budget) {
  if (!connected()) {
    error_ = "not connected";
    return std::nullopt;
  }
  WireRequest req;
  req.correlation_id = next_correlation_++;
  req.deadline_budget_us = deadline_budget ? deadline_budget->count() : 0;
  req.example = example;
  std::vector<uint8_t> frame;
  encode_serve_request(req, frame);
  if (!send_all(frame)) return std::nullopt;

  std::vector<uint8_t> payload;
  if (!recv_frame(FrameType::kServeResponse, payload)) return std::nullopt;
  WireResponse wire;
  if (!decode_serve_response(payload.data(), payload.size(), &wire)) {
    fail("malformed response payload from server");
    return std::nullopt;
  }
  // Synchronous protocol: one request in flight per connection, so a
  // mismatched id means the server answered some other request.
  if (wire.correlation_id != req.correlation_id) {
    fail("correlation id mismatch from server");
    return std::nullopt;
  }
  return wire.response;
}

}  // namespace fqbert::serve::net
