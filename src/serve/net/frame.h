// Wire protocol for the network transport: length-prefixed binary
// frames with a fixed 12-byte versioned header, explicit little-endian
// serialization (portable across hosts regardless of native order), and
// strict bounds-checked decode — a decoder either consumes exactly the
// declared payload or reports kError, never reads past the buffer, and
// never trusts a length field beyond kMaxPayload.
//
// Frame layout:
//
//   offset  size  field
//   0       4     magic       0x46514254 ("FQBT", LE)
//   4       1     version     kProtocolVersion (1)
//   5       1     type        FrameType
//   6       2     reserved    must be 0
//   8       4     payload_len bytes following the header (<= kMaxPayload)
//   12      ...   payload     type-specific, layouts below
//
// Payloads (all integers little-endian, floats as IEEE-754 bit patterns):
//
//   kInfoRequest   (client->server)  empty
//   kInfoResponse  (server->client)  8 x i64: vocab_size, hidden,
//                                    num_layers, num_heads, ffn_dim,
//                                    max_seq_len, num_segments, num_classes
//   kServeRequest  (client->server)  u64 correlation_id,
//                                    i64 deadline_budget_us (0 = none),
//                                    u32 num_tokens (<= kMaxTokens),
//                                    u32 num_segments (<= kMaxTokens),
//                                    i32 tokens[num_tokens],
//                                    i32 segments[num_segments]
//                                    (counts are independent so malformed
//                                    ragged examples reach server-side
//                                    admission instead of being silently
//                                    repaired by the codec)
//   kServeResponse (server->client)  u64 correlation_id, u8 status,
//                                    i32 predicted, i64 queue_us,
//                                    i64 latency_us, i32 batch_size,
//                                    u32 num_logits (<= kMaxLogits),
//                                    f32 logits[num_logits]
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "nn/bert.h"
#include "serve/request_queue.h"

namespace fqbert::serve::net {

inline constexpr uint32_t kFrameMagic = 0x46514254u;  // "FQBT"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 12;
/// Hard cap on any payload; a header declaring more is a protocol error
/// (closes the connection) — the decoder never allocates attacker-sized
/// buffers.
inline constexpr uint32_t kMaxPayload = 1u << 20;
/// Token count cap inside a serve request (far above any max_seq_len;
/// oversized-but-capped examples are rejected by server-side admission).
inline constexpr uint32_t kMaxTokens = 1u << 16;
inline constexpr uint32_t kMaxLogits = 1u << 16;

enum class FrameType : uint8_t {
  kInfoRequest = 1,
  kInfoResponse = 2,
  kServeRequest = 3,
  kServeResponse = 4,
};

struct FrameHeader {
  FrameType type{};
  uint32_t payload_len = 0;
};

/// Engine shape advertised by the server so a remote client can
/// synthesize valid examples without the engine file.
struct WireInfo {
  nn::BertConfig config;
};

/// One inference request on the wire. `correlation_id` is chosen by the
/// client and echoed verbatim in the response.
struct WireRequest {
  uint64_t correlation_id = 0;
  int64_t deadline_budget_us = 0;  // 0 = no deadline
  nn::Example example;
};

struct WireResponse {
  uint64_t correlation_id = 0;
  ServeResponse response;
};

enum class DecodeStatus {
  kNeedMore,  // not enough bytes yet; read more and retry
  kFrame,     // a complete, valid frame is available
  kError,     // protocol violation; the connection must be closed
};

/// Validate a header prefix. kNeedMore when len < kHeaderSize; kError on
/// bad magic / version / reserved bits / unknown type / oversized
/// payload declaration.
DecodeStatus decode_header(const uint8_t* data, size_t len, FrameHeader* out);

/// Strict payload decoders: true iff the payload parses AND consumes
/// exactly `len` bytes (trailing garbage is an error, as is any length
/// field pointing past the end).
bool decode_info_response(const uint8_t* payload, size_t len, WireInfo* out);
bool decode_serve_request(const uint8_t* payload, size_t len,
                          WireRequest* out);
bool decode_serve_response(const uint8_t* payload, size_t len,
                           WireResponse* out);

/// Encoders produce a complete frame (header + payload), appended to
/// `out` so a caller can coalesce several frames into one write buffer.
void encode_info_request(std::vector<uint8_t>& out);
void encode_info_response(const WireInfo& info, std::vector<uint8_t>& out);
void encode_serve_request(const WireRequest& req, std::vector<uint8_t>& out);
void encode_serve_response(const WireResponse& resp,
                           std::vector<uint8_t>& out);

}  // namespace fqbert::serve::net
