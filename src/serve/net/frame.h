// Wire protocol for the network transport: length-prefixed binary
// frames with a fixed 12-byte versioned header, explicit little-endian
// serialization (portable across hosts regardless of native order), and
// strict bounds-checked decode — a decoder either consumes exactly the
// declared payload or reports kError, never reads past the buffer, and
// never trusts a length field beyond kMaxPayload.
//
// Frame layout:
//
//   offset  size  field
//   0       4     magic       0x46514254 ("FQBT", LE)
//   4       1     version     1 or 2 (kProtocolVersion = 2)
//   5       1     type        FrameType
//   6       2     reserved    must be 0
//   8       4     payload_len bytes following the header (<= kMaxPayload)
//   12      ...   payload     type-specific, layouts below
//
// Version 2 (multi-model router) extends version 1 in two ways:
//   * serve/info frames carry a model-name string (empty = the server's
//     default model), so one endpoint serves many engines;
//   * control-plane frames (types 5..11) hot-load/unload engines and
//     query the per-model lanes. Control frames exist only in v2 — a v1
//     header declaring them is a protocol error.
// Version-1 frames remain fully served (routed to the default model),
// so old clients keep working against a v2 server.
//
// Strings on the wire are u16 length + raw bytes (no terminator), with
// per-field caps (kMaxNameLen / kMaxPathLen / kMaxMessageLen).
//
// Payloads (all integers little-endian, floats as IEEE-754 bit patterns):
//
//   kInfoRequest   (client->server)  v1: empty
//                                    v2: str model
//   kInfoResponse  (server->client)  v1: 8 x i64: vocab_size, hidden,
//                                    num_layers, num_heads, ffn_dim,
//                                    max_seq_len, num_segments, num_classes
//                                    v2: str model (resolved name), then
//                                    the same 8 x i64
//   kServeRequest  (client->server)  u64 correlation_id,
//                                    i64 deadline_budget_us (0 = none),
//                                    [v2 only: str model],
//                                    u32 num_tokens (<= kMaxTokens),
//                                    u32 num_segments (<= kMaxTokens),
//                                    i32 tokens[num_tokens],
//                                    i32 segments[num_segments]
//                                    (counts are independent so malformed
//                                    ragged examples reach server-side
//                                    admission instead of being silently
//                                    repaired by the codec)
//   kServeResponse (server->client)  u64 correlation_id, u8 status,
//                                    i32 predicted, i64 queue_us,
//                                    i64 latency_us, i32 batch_size,
//                                    u32 num_logits (<= kMaxLogits),
//                                    f32 logits[num_logits]
//   kLoadModel     (client->server)  str name, str path      [v2]
//   kUnloadModel   (client->server)  str name                [v2]
//   kListModels    (client->server)  empty                   [v2]
//   kStatsRequest  (client->server)  str name ("" = default) [v2]
//   kAdminResponse (server->client)  u8 ok, str message      [v2]
//   kModelList     (server->client)  u32 count (<= kMaxModelCount),
//                                    count x str name        [v2]
//   kStatsResponse (server->client)  str name, 10 x u64 (admitted,
//                                    rejected_full, rejected_deadline,
//                                    rejected_invalid, rejected_closed,
//                                    timed_out, completed, failed,
//                                    batches, latency_samples), 6 x f64
//                                    (mean_batch_occupancy, mean_queue_ms,
//                                    p50_ms, p95_ms, p99_ms, max_ms) [v2]
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "nn/bert.h"
#include "serve/request_queue.h"
#include "serve/stats.h"

namespace fqbert::serve::net {

inline constexpr uint32_t kFrameMagic = 0x46514254u;  // "FQBT"
inline constexpr uint8_t kProtocolVersion = 2;
inline constexpr uint8_t kMinProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 12;
/// Hard cap on any payload; a header declaring more is a protocol error
/// (closes the connection) — the decoder never allocates attacker-sized
/// buffers.
inline constexpr uint32_t kMaxPayload = 1u << 20;
/// Token count cap inside a serve request (far above any max_seq_len;
/// oversized-but-capped examples are rejected by server-side admission).
inline constexpr uint32_t kMaxTokens = 1u << 16;
inline constexpr uint32_t kMaxLogits = 1u << 16;
/// String caps (strings travel as u16 length + bytes).
inline constexpr uint32_t kMaxNameLen = 256;
inline constexpr uint32_t kMaxPathLen = 4096;
inline constexpr uint32_t kMaxMessageLen = 4096;
inline constexpr uint32_t kMaxModelCount = 1024;

enum class FrameType : uint8_t {
  kInfoRequest = 1,
  kInfoResponse = 2,
  kServeRequest = 3,
  kServeResponse = 4,
  // Control plane (protocol v2+).
  kLoadModel = 5,
  kUnloadModel = 6,
  kListModels = 7,
  kStatsRequest = 8,
  kAdminResponse = 9,
  kModelList = 10,
  kStatsResponse = 11,
};
inline constexpr uint8_t kLastV1FrameType =
    static_cast<uint8_t>(FrameType::kServeResponse);
inline constexpr uint8_t kLastFrameType =
    static_cast<uint8_t>(FrameType::kStatsResponse);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type{};
  uint32_t payload_len = 0;
};

/// Engine shape advertised by the server so a remote client can
/// synthesize valid examples without the engine file. `model` is the
/// resolved lane name (empty on v1 frames).
struct WireInfo {
  std::string model;
  nn::BertConfig config;
};

/// One inference request on the wire. `correlation_id` is chosen by the
/// client and echoed verbatim in the response; `model` routes it
/// (empty = default model; always empty on v1 frames).
struct WireRequest {
  uint64_t correlation_id = 0;
  int64_t deadline_budget_us = 0;  // 0 = no deadline
  std::string model;
  nn::Example example;
};

struct WireResponse {
  uint64_t correlation_id = 0;
  ServeResponse response;
};

/// Per-model stats snapshot on the wire (subset of ServeStats::Report
/// that serializes losslessly).
struct WireStats {
  std::string model;
  ServeStats::Report report;
};

enum class DecodeStatus {
  kNeedMore,  // not enough bytes yet; read more and retry
  kFrame,     // a complete, valid frame is available
  kError,     // protocol violation; the connection must be closed
};

/// Validate a header prefix. kNeedMore when len < kHeaderSize; kError on
/// bad magic / unsupported version / reserved bits / unknown type (or a
/// control type on a v1 frame) / oversized payload declaration.
DecodeStatus decode_header(const uint8_t* data, size_t len, FrameHeader* out);

/// Strict payload decoders: true iff the payload parses AND consumes
/// exactly `len` bytes (trailing garbage is an error, as is any length
/// field pointing past the end). Version-dependent layouts take the
/// header's version.
bool decode_info_request(const uint8_t* payload, size_t len, uint8_t version,
                         std::string* model_out);
bool decode_info_response(const uint8_t* payload, size_t len,
                          uint8_t version, WireInfo* out);
bool decode_serve_request(const uint8_t* payload, size_t len,
                          uint8_t version, WireRequest* out);
bool decode_serve_response(const uint8_t* payload, size_t len,
                           WireResponse* out);
bool decode_load_model(const uint8_t* payload, size_t len, std::string* name,
                       std::string* path);
bool decode_unload_model(const uint8_t* payload, size_t len,
                         std::string* name);
bool decode_stats_request(const uint8_t* payload, size_t len,
                          std::string* name);
bool decode_admin_response(const uint8_t* payload, size_t len, bool* ok,
                           std::string* message);
bool decode_model_list(const uint8_t* payload, size_t len,
                       std::vector<std::string>* names);
bool decode_stats_response(const uint8_t* payload, size_t len,
                           WireStats* out);

// ---------------------------------------------------------------------------
// Shallow forwarding helpers (shard proxy). A routing proxy needs the
// model name and correlation id of a serve frame — not its token
// arrays — so these peek at the payload prefix in O(1) and validate the
// declared array sizes arithmetically without materializing them. A
// frame that passes peek_serve_request is structurally safe to forward
// verbatim to a backend whose decoder runs the full strict decode.
// ---------------------------------------------------------------------------

/// Read correlation id + model name off a serve-request payload and
/// check (without decoding them) that the declared token/segment arrays
/// account for exactly the remaining bytes. False on any violation.
bool peek_serve_request(const uint8_t* payload, size_t len, uint8_t version,
                        uint64_t* correlation_id, std::string* model);

/// Read correlation id + status off a serve-response payload (the
/// fields a proxy needs for failover decisions), leaving logits alone.
bool peek_serve_response(const uint8_t* payload, size_t len,
                         uint64_t* correlation_id, RequestStatus* status);

/// Rebuild a complete serve-request frame with its model field replaced
/// by `model`, preserving the token/segment bytes untouched (they are
/// memcpy'd, not re-decoded). Version-1 input frames are upgraded to
/// version 2 (the only way to carry a model name). False when the input
/// is not a well-formed serve-request frame. `out` is overwritten.
bool rewrite_serve_request_model(const uint8_t* frame, size_t frame_len,
                                 const std::string& model,
                                 std::vector<uint8_t>* out);

/// Append just a 12-byte header for `hdr` (a proxy re-emitting a
/// relayed payload under a different protocol version).
void encode_frame_header(const FrameHeader& hdr, std::vector<uint8_t>& out);

/// Encoders produce a complete frame (header + payload), appended to
/// `out` so a caller can coalesce several frames into one write buffer.
/// Where the layout is version-dependent, `version` selects it (v1
/// encoders drop the model field — for old-client compatibility tests
/// and clients pinned to v1).
void encode_info_request(const std::string& model, std::vector<uint8_t>& out,
                         uint8_t version = kProtocolVersion);
void encode_info_response(const WireInfo& info, std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion);
void encode_serve_request(const WireRequest& req, std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion);
void encode_serve_response(const WireResponse& resp,
                           std::vector<uint8_t>& out,
                           uint8_t version = kProtocolVersion);
void encode_load_model(const std::string& name, const std::string& path,
                       std::vector<uint8_t>& out);
void encode_unload_model(const std::string& name, std::vector<uint8_t>& out);
void encode_list_models(std::vector<uint8_t>& out);
void encode_stats_request(const std::string& name, std::vector<uint8_t>& out);
void encode_admin_response(bool ok, const std::string& message,
                           std::vector<uint8_t>& out);
void encode_model_list(const std::vector<std::string>& names,
                       std::vector<uint8_t>& out);
void encode_stats_response(const WireStats& stats, std::vector<uint8_t>& out);

}  // namespace fqbert::serve::net
