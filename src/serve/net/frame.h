// Wire protocol for the network transport: length-prefixed binary
// frames with a fixed 12-byte versioned header, explicit little-endian
// serialization (portable across hosts regardless of native order), and
// strict bounds-checked decode — a decoder either consumes exactly the
// declared payload or reports kError, never reads past the buffer, and
// never trusts a length field beyond kMaxPayload.
//
// Frame layout:
//
//   offset  size  field
//   0       4     magic       0x46514254 ("FQBT", LE)
//   4       1     version     1..5 (kProtocolVersion = 5)
//   5       1     type        FrameType
//   6       2     reserved    must be 0
//   8       4     payload_len bytes following the header (<= kMaxPayload)
//   12      ...   payload     type-specific, layouts below
//
// Version 2 (multi-model router) extends version 1 in two ways:
//   * serve/info frames carry a model-name string (empty = the server's
//     default model), so one endpoint serves many engines;
//   * control-plane frames (types 5..11) hot-load/unload engines and
//     query the per-model lanes. Control frames exist only in v2+ — a v1
//     header declaring them is a protocol error.
// Version 3 (observability) adds request tracing and exact-mergeable
// stats:
//   * serve requests carry a u64 trace id (0 = unset; the first
//     v3-speaking hop mints one);
//   * serve responses carry a trailing trace section (trace id + per-
//     stage timestamps) AFTER the logits, so a relaying proxy can strip
//     or splice it without re-encoding the logits;
//   * stats responses append p99.9 and the full latency sketch (alpha,
//     zero count, exact max, log-buckets), making fan-out aggregation
//     exact instead of sample-weighted.
// Version 4 (precision tiers) adds a TIER to the model identity: a
// tier travels as one u8 holding the engine's weight_bits (0 = the
// model's default tier; valid values are 0 and 2..8 — anything else is
// a decode error):
//   * serve requests carry a u8 tier between the trace id and the
//     model string; serve responses append the RESOLVED tier as the
//     very last payload byte (after the trace section, so a relay can
//     still truncate at the trace boundary for old clients);
//   * info request/response carry a u8 tier after the model string;
//   * kLoadModel grows a trailing u8 tier (0 = the file's native
//     bits; other values derive that tier from the loaded engine),
//     kUnloadModel a trailing u8 tier (0 = every tier of the name),
//     kStatsRequest/kStatsResponse a u8 tier after the name, and
//     kModelList entries become (str name, u8 tier) pairs;
//   * a tier the server does not serve is rejected with
//     kRejectedUnknownTier (degraded to kRejectedUnknownModel for
//     pre-v4 clients, and further to kRejectedInvalid for v1).
// Version-1/2/3 frames remain fully served, so old clients keep
// working against a v4 server (they simply always ride the default
// tier).
// Version 5 (dynamic placement) adds the PROXY-ADMIN plane: four
// frames (types 14..17) that mutate or inspect a shard proxy's live
// placement table, plus the kPlacement response (type 18). They exist
// only in v5+ — a pre-v5 header declaring one is a protocol error, the
// same gating rule the v2 control plane uses — and every v1–v4 layout
// is unchanged, so older clients and backends are untouched. Backends
// do not implement these types; a backend receiving one answers with
// an in-band kAdminResponse failure like any unsupported admin op.
//
// The flight-recorder control pair (types 12/13) rides the v2+ control
// plane like LOAD/UNLOAD/STATS: kDumpEvents asks for the server's
// journal tail, kEventDump answers with typed binary events (a proxy
// fans the request out and merges backend journals with its own —
// timestamps are CLOCK_MONOTONIC so same-host merges order correctly).
//
// Strings on the wire are u16 length + raw bytes (no terminator), with
// per-field caps (kMaxNameLen / kMaxPathLen / kMaxMessageLen).
//
// Payloads (all integers little-endian, floats as IEEE-754 bit patterns):
//
//   kInfoRequest   (client->server)  v1: empty
//                                    v2: str model
//                                    v4: str model, u8 tier
//   kInfoResponse  (server->client)  v1: 8 x i64: vocab_size, hidden,
//                                    num_layers, num_heads, ffn_dim,
//                                    max_seq_len, num_segments, num_classes
//                                    v2: str model (resolved name), then
//                                    the same 8 x i64
//                                    v4: str model, u8 tier (resolved
//                                    weight_bits), then the 8 x i64
//   kServeRequest  (client->server)  u64 correlation_id,
//                                    i64 deadline_budget_us (0 = none),
//                                    [v3+: u64 trace_id (0 = unset)],
//                                    [v4+: u8 tier (0 = default)],
//                                    [v2+: str model],
//                                    u32 num_tokens (<= kMaxTokens),
//                                    u32 num_segments (<= kMaxTokens),
//                                    i32 tokens[num_tokens],
//                                    i32 segments[num_segments]
//                                    (counts are independent so malformed
//                                    ragged examples reach server-side
//                                    admission instead of being silently
//                                    repaired by the codec)
//   kServeResponse (server->client)  u64 correlation_id, u8 status,
//                                    i32 predicted, i64 queue_us,
//                                    i64 latency_us, i32 batch_size,
//                                    u32 num_logits (<= kMaxLogits),
//                                    f32 logits[num_logits],
//                                    [v3+ trailing trace section:
//                                    u64 trace_id, u8 num_stages
//                                    (<= kMaxTraceStages), num_stages x
//                                    (u8 stage <= kLastTraceStage,
//                                    i64 t_us)]
//                                    [v4+: u8 tier (resolved weight_bits)
//                                    as the FINAL payload byte]
//   kLoadModel     (client->server)  str name, str path      [v2]
//                                    [v4+: u8 tier (0 = file's native)]
//   kUnloadModel   (client->server)  str name                [v2]
//                                    [v4+: u8 tier (0 = all tiers)]
//   kListModels    (client->server)  empty                   [v2]
//   kStatsRequest  (client->server)  str name ("" = default) [v2]
//                                    [v4+: u8 tier]
//   kAdminResponse (server->client)  u8 ok, str message      [v2]
//   kModelList     (server->client)  u32 count (<= kMaxModelCount),
//                                    count x str name        [v2]
//                                    v4: count x (str name, u8 tier)
//   kStatsResponse (server->client)  str name, [v4+: u8 tier],
//                                    10 x u64 (admitted,
//                                    rejected_full, rejected_deadline,
//                                    rejected_invalid, rejected_closed,
//                                    timed_out, completed, failed,
//                                    batches, latency_samples), 6 x f64
//                                    (mean_batch_occupancy, mean_queue_ms,
//                                    p50_ms, p95_ms, p99_ms, max_ms) [v2+]
//                                    [v3+: f64 p999_ms, then the latency
//                                    sketch: f64 alpha (in (0,1)),
//                                    u64 zero_count, i64 max_us,
//                                    u32 num_buckets (<= kMaxSketchBuckets),
//                                    num_buckets x (i32 index, u64 count)]
//   kDumpEvents    (client->server)  u64 since_ns (0 = everything),
//                                    u32 max_events (0 = server default,
//                                    capped at kMaxDumpEvents)   [v2]
//   kEventDump     (server->client)  u32 count (<= kMaxDumpEvents),
//                                    count x (u64 t_ns, u64 trace_id,
//                                    u8 type (a FlightEventType),
//                                    u8 tier (wire_tier_valid),
//                                    u16 detail, u32 a, u64 b,
//                                    str tag (<= kMaxNameLen))    [v2]
//   kAddBackend    (client->proxy)   str host, u16 port,
//                                    u32 count (1..kMaxModelCount),
//                                    count x (str model, u8 tier)  [v5]
//   kRemoveBackend (client->proxy)   str address ("host:port")     [v5]
//   kMoveModel     (client->proxy)   str model, u8 tier,
//                                    str from ("host:port"),
//                                    str to ("host:port"),
//                                    str path (may be empty: target
//                                    must already hold the engine or
//                                    mint the tier from its default)  [v5]
//   kGetPlacement  (client->proxy)   empty                         [v5]
//   kPlacement     (proxy->client)   u64 epoch, u8 policy
//                                    (a PlacementPolicy, <= 1),
//                                    str default_model,
//                                    u32 count (<= kMaxModelCount),
//                                    count x (str address, u8 state
//                                    (BackendState, <= 15), u32 cells
//                                    (<= kMaxModelCount), cells x
//                                    (str model, u8 tier))          [v5]
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "nn/bert.h"
#include "serve/request_queue.h"
#include "serve/stats.h"
#include "serve/trace.h"

namespace fqbert::serve::net {

inline constexpr uint32_t kFrameMagic = 0x46514254u;  // "FQBT"
inline constexpr uint8_t kProtocolVersion = 5;
inline constexpr uint8_t kMinProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 12;
/// Hard cap on any payload; a header declaring more is a protocol error
/// (closes the connection) — the decoder never allocates attacker-sized
/// buffers.
inline constexpr uint32_t kMaxPayload = 1u << 20;
/// Token count cap inside a serve request (far above any max_seq_len;
/// oversized-but-capped examples are rejected by server-side admission).
inline constexpr uint32_t kMaxTokens = 1u << 16;
inline constexpr uint32_t kMaxLogits = 1u << 16;
/// String caps (strings travel as u16 length + bytes).
inline constexpr uint32_t kMaxNameLen = 256;
inline constexpr uint32_t kMaxPathLen = 4096;
inline constexpr uint32_t kMaxMessageLen = 4096;
inline constexpr uint32_t kMaxModelCount = 1024;
/// Trace stages per response. A request crosses a handful of stages per
/// hop; even a proxy retrying across many replicas stays far below this.
inline constexpr uint32_t kMaxTraceStages = 64;
/// Sketch buckets per stats response. With the default 1% relative
/// error the full int64 microsecond range spans ~2200 buckets.
inline constexpr uint32_t kMaxSketchBuckets = 4096;
/// Journal events per kEventDump frame. 4096 events at ~40 bytes each
/// stays well inside kMaxPayload even with full-length tags.
inline constexpr uint32_t kMaxDumpEvents = 4096;

/// A tier on the wire: u8 weight_bits, 0 = the model's default tier.
/// Anything outside {0, 2..8} is a decode error — it can only come
/// from a buggy or hostile peer, never a future widening (a new width
/// would ship as a new protocol version).
inline constexpr bool wire_tier_valid(uint8_t tier) {
  return tier == 0 || (tier >= 2 && tier <= 8);
}

enum class FrameType : uint8_t {
  kInfoRequest = 1,
  kInfoResponse = 2,
  kServeRequest = 3,
  kServeResponse = 4,
  // Control plane (protocol v2+).
  kLoadModel = 5,
  kUnloadModel = 6,
  kListModels = 7,
  kStatsRequest = 8,
  kAdminResponse = 9,
  kModelList = 10,
  kStatsResponse = 11,
  kDumpEvents = 12,
  kEventDump = 13,
  // Proxy-admin plane (protocol v5+): live placement mutation.
  kAddBackend = 14,
  kRemoveBackend = 15,
  kMoveModel = 16,
  kGetPlacement = 17,
  kPlacement = 18,
};
inline constexpr uint8_t kLastV1FrameType =
    static_cast<uint8_t>(FrameType::kServeResponse);
inline constexpr uint8_t kLastV4FrameType =
    static_cast<uint8_t>(FrameType::kEventDump);
inline constexpr uint8_t kLastFrameType =
    static_cast<uint8_t>(FrameType::kPlacement);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type{};
  uint32_t payload_len = 0;
};

/// Engine shape advertised by the server so a remote client can
/// synthesize valid examples without the engine file. `model` is the
/// resolved lane name (empty on v1 frames).
struct WireInfo {
  std::string model;
  uint8_t tier = 0;  // resolved weight_bits (0 on pre-v4 frames)
  nn::BertConfig config;
};

/// One inference request on the wire. `correlation_id` is chosen by the
/// client and echoed verbatim in the response; `model` routes it
/// (empty = default model; always empty on v1 frames). `trace_id` is 0
/// on v1/v2 frames and on v3 frames whose sender declined to trace.
struct WireRequest {
  uint64_t correlation_id = 0;
  int64_t deadline_budget_us = 0;  // 0 = no deadline
  uint64_t trace_id = 0;           // 0 = unset (v3+)
  uint8_t tier = 0;                // weight_bits, 0 = default (v4+)
  std::string model;
  nn::Example example;
};

struct WireResponse {
  uint64_t correlation_id = 0;
  ServeResponse response;
};

/// Per-model stats snapshot on the wire (subset of ServeStats::Report
/// that serializes losslessly).
struct WireStats {
  std::string model;
  uint8_t tier = 0;  // weight_bits of the lane (0 on pre-v4 frames)
  ServeStats::Report report;
};

/// One kModelList entry: a served lane. Pre-v4 frames carry names
/// only; their entries decode with tier 0.
struct WireModelEntry {
  std::string name;
  uint8_t tier = 0;
};

/// One flight-recorder journal entry on the wire (kEventDump). Field
/// meanings mirror serve::FlightEvent; `type` is validated against
/// kLastFlightEventType on decode.
struct WireEvent {
  uint64_t t_ns = 0;
  uint64_t trace_id = 0;
  uint8_t type = 0;
  uint8_t tier = 0;
  uint16_t detail = 0;
  uint32_t a = 0;
  uint64_t b = 0;
  std::string tag;
};

/// One backend row of a kPlacement frame: its address, health state
/// (the proxy's BackendState as a small integer; <= 15 on the wire)
/// and the (model, tier) cells placed on it.
struct WireBackendPlacement {
  std::string address;
  uint8_t state = 0;
  std::vector<WireModelEntry> models;
};

/// A kPlacement response: one placement generation as the proxy sees
/// it. `policy` is a shard::PlacementPolicy value (<= 1 on the wire).
struct WirePlacement {
  uint64_t epoch = 0;
  uint8_t policy = 0;
  std::string default_model;
  std::vector<WireBackendPlacement> backends;
};

enum class DecodeStatus {
  kNeedMore,  // not enough bytes yet; read more and retry
  kFrame,     // a complete, valid frame is available
  kError,     // protocol violation; the connection must be closed
};

/// Validate a header prefix. kNeedMore when len < kHeaderSize; kError on
/// bad magic / unsupported version / reserved bits / unknown type (or a
/// control type on a v1 frame) / oversized payload declaration.
DecodeStatus decode_header(const uint8_t* data, size_t len, FrameHeader* out);

/// Strict payload decoders: true iff the payload parses AND consumes
/// exactly `len` bytes (trailing garbage is an error, as is any length
/// field pointing past the end). Version-dependent layouts take the
/// header's version.
bool decode_info_request(const uint8_t* payload, size_t len, uint8_t version,
                         std::string* model_out, uint8_t* tier = nullptr);
bool decode_info_response(const uint8_t* payload, size_t len,
                          uint8_t version, WireInfo* out);
bool decode_serve_request(const uint8_t* payload, size_t len,
                          uint8_t version, WireRequest* out);
bool decode_serve_response(const uint8_t* payload, size_t len,
                           uint8_t version, WireResponse* out);
bool decode_load_model(const uint8_t* payload, size_t len, uint8_t version,
                       std::string* name, std::string* path, uint8_t* tier);
bool decode_unload_model(const uint8_t* payload, size_t len, uint8_t version,
                         std::string* name, uint8_t* tier);
bool decode_stats_request(const uint8_t* payload, size_t len, uint8_t version,
                          std::string* name, uint8_t* tier);
bool decode_admin_response(const uint8_t* payload, size_t len, bool* ok,
                           std::string* message);
bool decode_model_list(const uint8_t* payload, size_t len, uint8_t version,
                       std::vector<WireModelEntry>* entries);
bool decode_stats_response(const uint8_t* payload, size_t len,
                           uint8_t version, WireStats* out);
bool decode_dump_events(const uint8_t* payload, size_t len,
                        uint64_t* since_ns, uint32_t* max_events);
bool decode_event_dump(const uint8_t* payload, size_t len,
                       std::vector<WireEvent>* events);
// Proxy-admin codecs (protocol v5). Layout-stable across versions (the
// frames do not exist before v5), so no version parameter.
bool decode_add_backend(const uint8_t* payload, size_t len, std::string* host,
                        uint16_t* port, std::vector<WireModelEntry>* models);
bool decode_remove_backend(const uint8_t* payload, size_t len,
                           std::string* address);
bool decode_move_model(const uint8_t* payload, size_t len, std::string* model,
                       uint8_t* tier, std::string* from, std::string* to,
                       std::string* path);
bool decode_get_placement(const uint8_t* payload, size_t len);
bool decode_placement(const uint8_t* payload, size_t len, WirePlacement* out);

// ---------------------------------------------------------------------------
// Shallow forwarding helpers (shard proxy). A routing proxy needs the
// model name and correlation id of a serve frame — not its token
// arrays — so these peek at the payload prefix in O(1) and validate the
// declared array sizes arithmetically without materializing them. A
// frame that passes peek_serve_request is structurally safe to forward
// verbatim to a backend whose decoder runs the full strict decode.
// ---------------------------------------------------------------------------

/// Read correlation id, trace id, tier and model name off a
/// serve-request payload and check (without decoding them) that the
/// declared token/segment arrays account for exactly the remaining
/// bytes. `trace_id` reads 0 for v1/v2 frames; `tier` reads 0 for
/// pre-v4 frames. False on any violation.
bool peek_serve_request(const uint8_t* payload, size_t len, uint8_t version,
                        uint64_t* correlation_id, uint64_t* trace_id,
                        uint8_t* tier, std::string* model);

/// Read correlation id + status off a serve-response payload (the
/// fields a proxy needs for failover decisions), leaving logits alone.
bool peek_serve_response(const uint8_t* payload, size_t len,
                         uint64_t* correlation_id, RequestStatus* status);

/// Locate and decode the trailing trace section of a v3/v4
/// serve-response payload: `trace_start` gets the payload offset where
/// the section begins (so a relay can truncate there for a v1/v2
/// client or splice a rebuilt section for a v3+ one). On v4 payloads
/// the final tier byte (which sits AFTER the trace section) is
/// validated and returned via `tier`; v3 payloads leave it 0. Strictly
/// validated like the full decoder. False when the payload is not a
/// well-formed response of `version`.
bool split_serve_response_trace(const uint8_t* payload, size_t len,
                                uint8_t version, size_t* trace_start,
                                uint64_t* trace_id,
                                std::vector<TraceEvent>* stages,
                                uint8_t* tier = nullptr);

/// Append a serve-response trace section (u64 trace_id, u8 num_stages,
/// stages) to `out`, truncating at kMaxTraceStages.
void encode_trace_section(uint64_t trace_id,
                          const std::vector<TraceEvent>& stages,
                          std::vector<uint8_t>& out);

/// Rebuild a complete serve-request frame with its model field replaced
/// by `model`, preserving the token/segment bytes untouched (they are
/// memcpy'd, not re-decoded). Input frames of any supported version are
/// emitted as version 3; the input's trace id is preserved when nonzero,
/// otherwise `trace_id` is stamped (pass mint_trace_id() to start a
/// trace at the rewriting hop). False when the input is not a
/// well-formed serve-request frame. `out` is overwritten.
bool rewrite_serve_request_model(const uint8_t* frame, size_t frame_len,
                                 const std::string& model, uint64_t trace_id,
                                 std::vector<uint8_t>* out,
                                 uint8_t tier = 0);

/// Append just a 12-byte header for `hdr` (a proxy re-emitting a
/// relayed payload under a different protocol version).
void encode_frame_header(const FrameHeader& hdr, std::vector<uint8_t>& out);

/// Encoders produce a complete frame (header + payload), appended to
/// `out` so a caller can coalesce several frames into one write buffer.
/// Where the layout is version-dependent, `version` selects it (v1
/// encoders drop the model field — for old-client compatibility tests
/// and clients pinned to v1).
void encode_info_request(const std::string& model, std::vector<uint8_t>& out,
                         uint8_t version = kProtocolVersion,
                         uint8_t tier = 0);
void encode_info_response(const WireInfo& info, std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion);
void encode_serve_request(const WireRequest& req, std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion);
void encode_serve_response(const WireResponse& resp,
                           std::vector<uint8_t>& out,
                           uint8_t version = kProtocolVersion);
void encode_load_model(const std::string& name, const std::string& path,
                       std::vector<uint8_t>& out,
                       uint8_t version = kProtocolVersion, uint8_t tier = 0);
void encode_unload_model(const std::string& name, std::vector<uint8_t>& out,
                         uint8_t version = kProtocolVersion,
                         uint8_t tier = 0);
/// v2+ control frames. `version` lets a pinned-v2 client ask in its own
/// dialect (the server answers in the request's version, so asking in
/// v3 would bounce a sketch suffix off a v2 decoder); values below 2
/// are clamped up to 2.
void encode_list_models(std::vector<uint8_t>& out,
                        uint8_t version = kProtocolVersion);
void encode_stats_request(const std::string& name, std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion,
                          uint8_t tier = 0);
void encode_admin_response(bool ok, const std::string& message,
                           std::vector<uint8_t>& out);
void encode_model_list(const std::vector<WireModelEntry>& entries,
                       std::vector<uint8_t>& out,
                       uint8_t version = kProtocolVersion);
void encode_stats_response(const WireStats& stats, std::vector<uint8_t>& out,
                           uint8_t version = kProtocolVersion);
void encode_dump_events(uint64_t since_ns, uint32_t max_events,
                        std::vector<uint8_t>& out,
                        uint8_t version = kProtocolVersion);
/// Truncates at kMaxDumpEvents (mirroring the decoder's cap, like
/// encode_model_list).
void encode_event_dump(const std::vector<WireEvent>& events,
                       std::vector<uint8_t>& out,
                       uint8_t version = kProtocolVersion);
/// Proxy-admin encoders (v5+ only; `version` values below 5 are
/// clamped up, mirroring how the control encoders clamp to 2).
void encode_add_backend(const std::string& host, uint16_t port,
                        const std::vector<WireModelEntry>& models,
                        std::vector<uint8_t>& out,
                        uint8_t version = kProtocolVersion);
void encode_remove_backend(const std::string& address,
                           std::vector<uint8_t>& out,
                           uint8_t version = kProtocolVersion);
void encode_move_model(const std::string& model, uint8_t tier,
                       const std::string& from, const std::string& to,
                       const std::string& path, std::vector<uint8_t>& out,
                       uint8_t version = kProtocolVersion);
void encode_get_placement(std::vector<uint8_t>& out,
                          uint8_t version = kProtocolVersion);
void encode_placement(const WirePlacement& placement,
                      std::vector<uint8_t>& out,
                      uint8_t version = kProtocolVersion);

}  // namespace fqbert::serve::net
