#include "serve/net/transport_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "serve/debug_text.h"
#include "serve/flight_recorder.h"

namespace fqbert::serve::net {

namespace {

/// Writes above this leave the connection doomed: a client that never
/// reads its responses cannot pin server memory.
constexpr size_t kMaxWriteBuffer = 8u << 20;

/// Per-poll-event read budget. A peer streaming at wire speed must not
/// keep one connection's recv loop spinning (level-triggered poll
/// re-arms on leftover bytes), so a single connection can neither
/// starve the others nor grow conn.in unboundedly: after draining,
/// leftover is at most one partial frame (kHeaderSize + kMaxPayload)
/// plus this budget.
constexpr size_t kReadBudget = 256u * 1024;

/// How long to stop accept()ing after fd exhaustion (EMFILE/ENFILE):
/// without a pause, the still-readable listen socket makes poll() spin
/// at 100% CPU retrying an accept that cannot succeed.
constexpr auto kAcceptBackoff = std::chrono::milliseconds(100);

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

TransportServer::TransportServer(ModelRouter& router,
                                 const TransportConfig& cfg)
    : router_(router), cfg_(cfg) {
  if (cfg_.completion_threads < 1) cfg_.completion_threads = 1;
  if (cfg_.max_connections < 1) cfg_.max_connections = 1;
}

TransportServer::~TransportServer() { stop(); }

bool TransportServer::start() {
  if (running_) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::perror("transport: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "transport: bad bind address %s\n",
                 cfg_.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    std::perror("transport: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (!set_nonblocking(listen_fd_)) {
    std::perror("transport: fcntl");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    std::perror("transport: pipe2");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  stopping_ = false;
  {
    // Completion threads from a previous start() are joined, but the
    // lock keeps the analysis (and any future restart path) honest.
    MutexLock lock(waiters_mu_);
    waiters_closed_ = false;
  }
  running_ = true;
  loop_thread_ = std::thread([this] { event_loop(); });
  for (int i = 0; i < cfg_.completion_threads; ++i)
    completion_threads_.emplace_back([this] { completion_loop(); });
  return true;
}

void TransportServer::stop() {
  if (!running_) return;
  stopping_ = true;
  wake_event_loop();
  loop_thread_.join();
  {
    // Completion threads drain every in-flight future (the event loop
    // is gone, so their responses are dropped), then exit.
    MutexLock lock(waiters_mu_);
    waiters_closed_ = true;
  }
  waiters_cv_.notify_all();
  for (std::thread& t : completion_threads_) t.join();
  completion_threads_.clear();
  ::close(wake_rd_);
  ::close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  running_ = false;
}

TransportServer::Counters TransportServer::counters() const {
  MutexLock lock(counters_mu_);
  return counters_;
}

void TransportServer::wake_event_loop() {
  const char byte = 'w';
  // EAGAIN means the pipe already holds a pending wakeup: good enough.
  [[maybe_unused]] ssize_t n = ::write(wake_wr_, &byte, 1);
}

void TransportServer::push_waiter(Waiter&& w) {
  {
    MutexLock lock(waiters_mu_);
    waiters_.push_back(std::move(w));
  }
  waiters_cv_.notify_one();
}

void TransportServer::completion_loop() {
  for (;;) {
    Waiter w;
    {
      MutexLock lock(waiters_mu_);
      // Explicit loop: a lambda predicate reading waiters_ would be
      // opaque to the thread-safety analysis.
      while (!waiters_closed_ && waiters_.empty())
        waiters_cv_.wait(lock.native());
      if (waiters_.empty()) return;  // closed and drained
      w = std::move(waiters_.front());
      waiters_.pop_front();
    }
    Completion done;
    done.conn_id = w.conn_id;
    if (w.admin) {
      // Control-plane job: blocking load (file I/O) or unload (lane
      // drain) — exactly what these threads exist to keep off the
      // event loop.
      done.bytes = w.admin();
    } else {
      WireResponse wire;
      wire.correlation_id = w.correlation_id;
      wire.response = w.fut.get();  // blocks here, never in the event loop
      // Statuses minted after v1 must not travel in a v1 frame: an
      // old client's decoder treats an out-of-range status byte as a
      // malformed payload and kills the connection. Unknown-tier (v4)
      // degrades to unknown-model for v2/v3 clients, and unknown-model
      // (only reachable by v1 when the default lane was unloaded)
      // degrades further to the closest v1-era rejection.
      if (w.version < 4 &&
          wire.response.status == RequestStatus::kRejectedUnknownTier)
        wire.response.status = RequestStatus::kRejectedUnknownModel;
      if (w.version < 2 &&
          wire.response.status == RequestStatus::kRejectedUnknownModel)
        wire.response.status = RequestStatus::kRejectedInvalid;
      // Traced requests get a final admission-relative stamp here, the
      // moment the response is handed to the transport.
      if (!wire.response.trace.empty())
        wire.response.trace.push_back(
            {TraceStage::kResponded,
             std::chrono::duration_cast<Micros>(Clock::now() -
                                                wire.response.admitted_at)
                 .count()});
      encode_serve_response(wire, done.bytes, w.version);
    }
    {
      MutexLock lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    wake_event_loop();
  }
}

void TransportServer::event_loop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 for specials)
  while (!stopping_) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_rd_, POLLIN, 0});
    fd_conn.push_back(0);
    // During accept backoff the listen fd stays in the set (stable
    // indices) but asks for no events, so a full accept queue cannot
    // spin the loop.
    const bool accepting = Clock::now() >= accept_backoff_until_;
    fds.push_back({listen_fd_, static_cast<short>(accepting ? POLLIN : 0), 0});
    fd_conn.push_back(0);
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.out_pos < conn.out.size()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/500);
    if (stopping_) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
      std::deque<Completion> done;
      {
        MutexLock lock(completions_mu_);
        done.swap(completions_);
      }
      for (Completion& c : done) {
        auto it = conns_.find(c.conn_id);
        if (it == conns_.end()) continue;  // client left; drop the response
        it->second.out.insert(it->second.out.end(), c.bytes.begin(),
                              c.bytes.end());
        {
          MutexLock lock(counters_mu_);
          ++counters_.frames_out;
        }
        if (it->second.out.size() - it->second.out_pos > kMaxWriteBuffer) {
          {
            MutexLock lock(counters_mu_);
            ++counters_.overflow_closes;
          }
          close_connection(c.conn_id);
        }
      }
    }

    if (fds[1].revents & POLLIN) accept_ready();

    for (size_t i = 2; i < fds.size(); ++i) {
      const uint64_t id = fd_conn[i];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      bool alive = true;
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
        alive = service_reads(conn, id);
      if (alive && (fds[i].revents & POLLOUT)) alive = service_writes(conn);
      if (!alive) close_connection(id);
    }
  }
  // Teardown (still on the loop thread, which owns conns_).
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void TransportServer::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM)
        accept_backoff_until_ = Clock::now() + kAcceptBackoff;
      return;  // EAGAIN / transient / exhausted: done accepting for now
    }
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conns_.emplace(next_conn_id_++, std::move(conn));
    MutexLock lock(counters_mu_);
    ++counters_.accepted;
  }
}

bool TransportServer::service_reads(Connection& conn, uint64_t conn_id) {
  size_t budget = kReadBudget;
  while (budget > 0) {
    uint8_t buf[64 * 1024];
    const ssize_t n =
        ::recv(conn.fd, buf, std::min(sizeof(buf), budget), 0);
    if (n > 0) {
      conn.in.insert(conn.in.end(), buf, buf + n);
      budget -= static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Budget exhausted with bytes left in the socket: level-triggered
  // poll re-arms, the remainder is read next iteration — fairness over
  // greed.
  if (!drain_frames(conn, conn_id)) {
    MutexLock lock(counters_mu_);
    ++counters_.protocol_errors;
    return false;
  }
  if (conn.out.size() - conn.out_pos > kMaxWriteBuffer) {
    // Backpressure, not wire corruption: the peer writes requests but
    // never reads responses. Counted apart from protocol errors.
    MutexLock lock(counters_mu_);
    ++counters_.overflow_closes;
    return false;
  }
  return true;
}

bool TransportServer::drain_frames(Connection& conn, uint64_t conn_id) {
  size_t pos = 0;
  bool ok = true;
  while (ok) {
    FrameHeader hdr;
    const DecodeStatus st =
        decode_header(conn.in.data() + pos, conn.in.size() - pos, &hdr);
    if (st == DecodeStatus::kNeedMore) break;
    if (st == DecodeStatus::kError) {
      ok = false;
      break;
    }
    if (conn.in.size() - pos < kHeaderSize + hdr.payload_len) break;
    const uint8_t* payload = conn.in.data() + pos + kHeaderSize;
    {
      MutexLock lock(counters_mu_);
      ++counters_.frames_in;
    }
    switch (hdr.type) {
      case FrameType::kInfoRequest: {
        std::string model;
        uint8_t tier = 0;
        if (!decode_info_request(payload, hdr.payload_len, hdr.version,
                                 &model, &tier)) {
          ok = false;
          break;
        }
        const std::optional<nn::BertConfig> cfg =
            router_.model_config(model, tier);
        if (cfg) {
          WireInfo info;
          info.model = model.empty() ? router_.default_model() : model;
          info.tier = tier != 0
                          ? tier
                          : static_cast<uint8_t>(router_.default_tier(model));
          info.config = *cfg;
          encode_info_response(info, conn.out, hdr.version);
        } else if (hdr.version >= 2) {
          // v2 can express the failure in-band.
          encode_admin_response(
              false,
              tier != 0 && router_.has_model(model)
                  ? "model '" + model + "' does not serve tier int" +
                        std::to_string(static_cast<int>(tier))
                  : "no model named '" + model + "' is being served",
              conn.out);
        } else {
          // v1 cannot (its info response is shape-only and always
          // "succeeds"); a v1 client asking a router with no default
          // lane is a protocol-level dead end — close.
          ok = false;
          break;
        }
        MutexLock lock(counters_mu_);
        ++counters_.frames_out;
        break;
      }
      case FrameType::kServeRequest: {
        WireRequest req;
        if (!decode_serve_request(payload, hdr.payload_len, hdr.version,
                                  &req)) {
          ok = false;
          break;
        }
        std::optional<Micros> budget;
        if (req.deadline_budget_us > 0)
          budget = Micros(req.deadline_budget_us);
        Waiter w;
        w.conn_id = conn_id;
        w.correlation_id = req.correlation_id;
        w.version = hdr.version;
        w.fut = router_.submit(req.model, std::move(req.example), budget,
                               /*admit=*/nullptr, req.trace_id, req.tier);
        push_waiter(std::move(w));
        break;
      }
      case FrameType::kLoadModel: {
        std::string name, path;
        uint8_t tier = 0;
        if (!decode_load_model(payload, hdr.payload_len, hdr.version, &name,
                               &path, &tier) ||
            name.empty()) {
          ok = false;
          break;
        }
        Waiter w;
        w.conn_id = conn_id;
        w.admin = [this, name, path, tier]() {
          std::string error;
          std::vector<uint8_t> bytes;
          if (router_.load_model(name, path, &error, tier))
            encode_admin_response(true, "loaded '" + name + "'", bytes);
          else
            encode_admin_response(false, error, bytes);
          return bytes;
        };
        push_waiter(std::move(w));
        break;
      }
      case FrameType::kUnloadModel: {
        std::string name;
        uint8_t tier = 0;
        if (!decode_unload_model(payload, hdr.payload_len, hdr.version,
                                 &name, &tier) ||
            name.empty()) {
          ok = false;
          break;
        }
        Waiter w;
        w.conn_id = conn_id;
        w.admin = [this, name, tier]() {
          std::string error;
          std::vector<uint8_t> bytes;
          if (router_.unload_model(name, &error, tier))
            encode_admin_response(true, "unloaded '" + name + "'", bytes);
          else
            encode_admin_response(false, error, bytes);
          return bytes;
        };
        push_waiter(std::move(w));
        break;
      }
      case FrameType::kListModels: {
        if (hdr.payload_len != 0) {
          ok = false;
          break;
        }
        // v4 gets one row per served (model, tier); older dialects get
        // one row per model name (their frame has no tier column).
        std::vector<WireModelEntry> entries;
        for (const std::string& name : router_.model_names()) {
          if (hdr.version >= 4) {
            for (const int bits : router_.served_tiers(name))
              entries.push_back({name, static_cast<uint8_t>(bits)});
          } else {
            entries.push_back({name, 0});
          }
        }
        encode_model_list(entries, conn.out, hdr.version);
        MutexLock lock(counters_mu_);
        ++counters_.frames_out;
        break;
      }
      case FrameType::kStatsRequest: {
        std::string name;
        uint8_t tier = 0;
        if (!decode_stats_request(payload, hdr.payload_len, hdr.version,
                                  &name, &tier)) {
          ok = false;
          break;
        }
        const std::optional<ServeStats::Report> report =
            router_.stats_report(name, tier);
        if (report) {
          WireStats stats;
          stats.model = name.empty() ? router_.default_model() : name;
          stats.tier = tier != 0
                           ? tier
                           : static_cast<uint8_t>(router_.default_tier(name));
          stats.report = *report;
          encode_stats_response(stats, conn.out, hdr.version);
        } else {
          encode_admin_response(
              false, "no model named '" + name + "' is being served",
              conn.out);
        }
        MutexLock lock(counters_mu_);
        ++counters_.frames_out;
        break;
      }
      case FrameType::kDumpEvents: {
        // Flight-recorder dump: answered inline like LIST/STATS — the
        // snapshot is lock-light and never touches the data plane.
        uint64_t since_ns = 0;
        uint32_t max_events = 0;
        if (hdr.version < 2 ||
            !decode_dump_events(payload, hdr.payload_len, &since_ns,
                                &max_events)) {
          ok = false;
          break;
        }
        encode_event_dump(
            wire_events(FlightRecorder::instance(), since_ns, max_events),
            conn.out, hdr.version);
        MutexLock lock(counters_mu_);
        ++counters_.frames_out;
        break;
      }
      case FrameType::kAddBackend:
      case FrameType::kRemoveBackend:
      case FrameType::kMoveModel:
      case FrameType::kGetPlacement:
        // Proxy-admin plane: a plain backend has no placement table.
        // Answered in-band (not a stream error) so an admin tool probing
        // the wrong endpoint gets a readable refusal, not a hangup.
        encode_admin_response(
            false,
            "placement administration targets a shard proxy, not a backend",
            conn.out);
        {
          MutexLock lock(counters_mu_);
          ++counters_.frames_out;
        }
        break;
      case FrameType::kInfoResponse:
      case FrameType::kServeResponse:
      case FrameType::kAdminResponse:
      case FrameType::kModelList:
      case FrameType::kStatsResponse:
      case FrameType::kEventDump:
      case FrameType::kPlacement:
        ok = false;  // server-bound streams must not carry responses
        break;
    }
    if (ok) pos += kHeaderSize + hdr.payload_len;
  }
  if (pos > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + pos);
  return ok;
}

bool TransportServer::service_writes(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                             conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_pos = 0;
  return true;
}

void TransportServer::close_connection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  MutexLock lock(counters_mu_);
  ++counters_.closed;
}

}  // namespace fqbert::serve::net
