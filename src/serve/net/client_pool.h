// ClientPool: persistent TransportClient connections to ONE backend
// endpoint, shared by many proxy threads. checkout() hands back an
// exclusively-owned connection (reusing a warm idle one when possible),
// and the RAII Handle returns it at scope exit — but only when it is
// provably reusable.
//
// Reuse-after-error rules (the invariant the shard proxy's failover
// correctness rests on):
//   * a client is pooled back ONLY when it is still connected() and its
//     error_kind() is ClientError::kNone — i.e. the last operation
//     either succeeded or failed purely in-band (an admin-level
//     failure, which consumes its whole frame and leaves the stream
//     aligned);
//   * any transport-level failure (connect/send/recv error, timeout,
//     protocol violation) already closed the socket inside
//     TransportClient, and the handle discards it — a connection that
//     timed out mid-frame is desynchronized and must never carry a
//     second request;
//   * Handle::discard() force-drops a connection the caller no longer
//     trusts (e.g. an unexpected frame type from the backend).
//
// An idle pooled connection can still have been closed by the peer
// while parked; the next call on it fails fast and the caller retries
// with a fresh checkout (the shard proxy folds this into its failover
// loop).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/net/transport_client.h"

namespace fqbert::serve::net {

struct ClientPoolConfig {
  /// Idle connections kept warm; checkouts beyond this still succeed
  /// (a transient connection is made) but are not pooled on return.
  size_t capacity = 4;
  Micros connect_timeout{2'000'000};
  /// Whole-frame receive budget applied to every pooled connection.
  Micros recv_timeout{30'000'000};
  uint8_t protocol_version = kProtocolVersion;
};

class ClientPool {
 public:
  ClientPool(std::string host, uint16_t port,
             const ClientPoolConfig& cfg = {});

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Exclusive lease on one connection. Destroying the handle returns
  /// the client to the pool iff it passes the reuse rules above.
  class Handle {
   public:
    Handle() = default;
    Handle(ClientPool* pool, std::unique_ptr<TransportClient> client,
           bool reused)
        : pool_(pool), client_(std::move(client)), reused_(reused) {}
    ~Handle() { release(); }

    Handle(Handle&& other) noexcept
        : pool_(other.pool_),
          client_(std::move(other.client_)),
          reused_(other.reused_) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        client_ = std::move(other.client_);
        reused_ = other.reused_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    explicit operator bool() const { return client_ != nullptr; }
    TransportClient* operator->() const { return client_.get(); }
    TransportClient& operator*() const { return *client_; }

    /// True when this lease came from the idle pool rather than a
    /// fresh dial. A reused connection may have been closed by the
    /// peer while parked, so its failure says nothing about the
    /// backend's health — callers should retry on a fresh checkout
    /// before treating the backend as unreachable.
    bool reused() const { return reused_; }

    /// Drop the connection now; it will not be pooled.
    void discard();

   private:
    void release();

    ClientPool* pool_ = nullptr;
    std::unique_ptr<TransportClient> client_;
    bool reused_ = false;
  };

  /// Reuse an idle connection or dial a new one. An empty handle (and
  /// *error, when given) on connection failure.
  Handle checkout(std::string* error = nullptr);

  /// Drop every idle connection (e.g. the backend is being retired).
  void clear();

  /// Half-close EVERY connection — idle and checked-out alike — so
  /// threads blocked mid-call on a leased connection fail promptly
  /// (proxy shutdown must not wait out a full call timeout). Also
  /// CLOSES the pool: subsequent checkouts fail fast instead of
  /// dialing fresh connections the sweep would miss. reopen() undoes
  /// the closure (a proxy being start()ed again).
  void shutdown_all();
  void reopen();

  struct Stats {
    uint64_t created = 0;    // fresh connections dialed
    uint64_t reused = 0;     // checkouts served from the idle pool
    uint64_t pooled = 0;     // returns that passed the reuse rules
    uint64_t discarded = 0;  // returns dropped (broken or over capacity)
    size_t idle = 0;
  };
  Stats stats() const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  friend class Handle;
  /// Handle destructor path: apply the reuse rules.
  void give_back(std::unique_ptr<TransportClient> client);
  /// Handle::discard path: drop the lease bookkeeping.
  void forget(TransportClient* client);

  const std::string host_;
  const uint16_t port_;
  const ClientPoolConfig cfg_;

  mutable Mutex mu_;
  // LIFO: the most recently used connection is the least likely to have
  // been idle-closed by the peer.
  std::vector<std::unique_ptr<TransportClient>> idle_ GUARDED_BY(mu_);
  /// Connections currently leased out (for shutdown_all; entries are
  /// owned by their Handle, this only observes them).
  std::set<TransportClient*> outstanding_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;  // set by shutdown_all
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace fqbert::serve::net
