// TransportServer: the socket front end of the serving stack. One
// poll(2) event-loop thread owns the listening socket and every
// connection (non-blocking accept / reads into per-connection buffers /
// buffered writes); decoded requests are routed through
// ModelRouter::submit() by the model name they carry, and the returned
// futures are waited on by a small pool of completion threads that push
// encoded responses onto a completion queue and nudge the event loop
// through a wakeup pipe — the loop itself never blocks on inference.
// Control-plane frames (LOAD_MODEL / UNLOAD_MODEL) also run on the
// completion threads, since loading reads files and unloading drains a
// lane; LIST_MODELS / STATS are answered inline (cheap map reads).
//
//   ModelRouter router(registry, cfg);
//   router.add_model("sst2");
//   router.start();
//   TransportServer transport(router, {.port = 9000});
//   transport.start();                 // returns once listening
//   ... clients connect with TransportClient / loadgen --connect ...
//   transport.stop();                  // close sockets, join threads
//   router.shutdown();
//
// Protocol errors (bad magic/version, oversized or short payloads) close
// the offending connection immediately; the server itself stays up. A
// client that disconnects before its response arrives simply has the
// response dropped (tracked by connection generation ids). Version-1
// frames are served on the router's default model; responses to them
// are encoded as v1 frames, so pre-router clients never see v2 bytes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/net/frame.h"
#include "serve/router/model_router.h"

namespace fqbert::serve::net {

struct TransportConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Accepted connections above this are closed immediately.
  size_t max_connections = 256;
  /// Threads blocking on submit() futures and admin operations (the
  /// event loop never does).
  int completion_threads = 2;
};

class TransportServer {
 public:
  TransportServer(ModelRouter& router, const TransportConfig& cfg = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Bind + listen + spawn the event loop and completion threads.
  /// False (with a message on stderr) when the socket cannot be bound.
  /// The ModelRouter must already be start()ed.
  bool start();

  /// Close the listener and every connection, then join all threads.
  /// Safe to call twice. Completion threads drain in-flight futures
  /// before exiting, so call stop() while the ModelRouter is still
  /// able to complete them (running, or after a draining shutdown).
  void stop();

  /// Actual bound port (resolves ephemeral binds). 0 before start().
  uint16_t port() const { return port_; }
  bool running() const { return running_; }

  struct Counters {
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t protocol_errors = 0;  // connections closed on decode error
    uint64_t overflow_closes = 0;  // closed on write-buffer backpressure
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
  };
  Counters counters() const;

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;   // unparsed bytes
    std::vector<uint8_t> out;  // unwritten bytes
    size_t out_pos = 0;        // written prefix of `out`
  };

  /// Work parked on a completion thread, tagged with the connection its
  /// result must be delivered to (by id: the connection may die first).
  /// Either a response future in flight (serve path) or an admin job —
  /// a callable performing a blocking control-plane operation and
  /// returning the encoded response frame.
  struct Waiter {
    uint64_t conn_id = 0;
    uint64_t correlation_id = 0;
    std::future<ServeResponse> fut;
    uint8_t version = kProtocolVersion;  // response encoding version
    std::function<std::vector<uint8_t>()> admin;  // set => admin job
  };

  /// An encoded response ready for the event loop to enqueue.
  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> bytes;
  };

  void event_loop();
  void completion_loop();
  void accept_ready();
  /// Read + parse one connection. False when it must be closed.
  bool service_reads(Connection& conn, uint64_t conn_id);
  /// Flush buffered writes. False when the peer is gone.
  bool service_writes(Connection& conn);
  /// Parse every complete frame in conn.in. False on protocol error.
  bool drain_frames(Connection& conn, uint64_t conn_id);
  void close_connection(uint64_t conn_id);
  void push_waiter(Waiter&& w);
  void wake_event_loop();

  ModelRouter& router_;
  TransportConfig cfg_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;  // self-pipe: completions -> poll()
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread loop_thread_;
  std::vector<std::thread> completion_threads_;

  // Connections are owned by the event loop thread exclusively.
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;
  // Pause accepting until this instant after fd exhaustion (EMFILE &
  // co.), so a full queue cannot busy-spin the poll loop.
  TimePoint accept_backoff_until_{};

  Mutex waiters_mu_;
  std::condition_variable waiters_cv_;
  std::deque<Waiter> waiters_ GUARDED_BY(waiters_mu_);
  bool waiters_closed_ GUARDED_BY(waiters_mu_) = false;

  Mutex completions_mu_;
  std::deque<Completion> completions_ GUARDED_BY(completions_mu_);

  mutable Mutex counters_mu_;
  Counters counters_ GUARDED_BY(counters_mu_);
};

}  // namespace fqbert::serve::net
