// Build identity, surfaced two ways so an operator can always tie a
// running binary (or a crash dump) back to a source revision:
//   * the `fqbert_build_info{version,git_sha,compiler,sanitizer}` gauge
//     (value 1) on every Prometheus exposition — the standard idiom for
//     joining metrics against deploys;
//   * the flight recorder's crash banner, which prints the same string.
// Values are baked at compile time (FQBERT_GIT_SHA comes from CMake via
// `git rev-parse`); there is nothing to configure at runtime.
#pragma once

#include <string>

namespace fqbert::serve {

/// Release version of this build ("0.9.0").
const char* build_version();

/// Short git SHA the build was configured from ("unknown" outside a
/// checkout).
const char* build_git_sha();

/// Compiler id + version string ("clang 17.0.1", "gcc 13.2.0").
const char* build_compiler();

/// Sanitizer baked into this binary: "address", "thread", or "none".
const char* build_sanitizer();

/// One-line summary, identical wording in the crash dump and logs:
///   version=0.9.0 git_sha=abc1234 compiler=gcc 13.2.0 sanitizer=none
std::string build_info_string();

}  // namespace fqbert::serve
