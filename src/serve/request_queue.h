// Thread-safe bounded handoff between client threads and the dynamic
// batcher, with deadline-aware admission: a request whose deadline has
// already passed (or whose queue is full) is rejected at submit time
// instead of wasting engine cycles downstream.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <vector>

#include "nn/bert.h"
#include "platform/thread_annotations.h"
#include "serve/trace.h"

namespace fqbert::serve {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Micros = std::chrono::microseconds;

/// Terminal status delivered through the response future. Appended-only:
/// the values travel the wire as u8, so reordering would break protocol
/// compatibility.
enum class RequestStatus {
  kOk,
  kRejectedQueueFull,
  kRejectedDeadline,  // dead on arrival at admission
  kRejectedInvalid,   // example malformed for the target engine
  kTimedOut,          // admitted, but expired before an engine ran it
  kEngineError,       // engine threw while executing this batch
  kShutdown,          // server aborted without draining
  kRejectedUnknownModel,  // router: no lane serves the requested model
  kRejectedUnknownTier,   // router: model known, requested tier is not
};
inline constexpr RequestStatus kLastRequestStatus =
    RequestStatus::kRejectedUnknownTier;

const char* request_status_name(RequestStatus s);

struct ServeResponse {
  uint64_t request_id = 0;
  RequestStatus status = RequestStatus::kOk;
  std::vector<float> logits;  // [num_classes], empty unless kOk
  int32_t predicted = -1;
  int64_t queue_us = 0;    // admission -> batch formation
  int64_t latency_us = 0;  // admission -> response
  int32_t batch_size = 0;  // occupancy of the batch this request rode in
  uint8_t tier = 0;        // weight_bits of the lane that served it
  uint64_t trace_id = 0;   // 0 = request was not traced
  // Per-stage timestamps (us, relative to admission) when traced.
  std::vector<TraceEvent> trace;
  // Admission instant, so a later hop (the transport completion path)
  // can stamp admission-relative stages. Process-local; never wired.
  TimePoint admitted_at{};
};

struct ServeRequest {
  uint64_t id = 0;
  uint8_t tier = 0;       // weight_bits of the lane this request rides
  uint64_t trace_id = 0;  // 0 = untraced; carried into the response
  nn::Example example;
  TimePoint enqueue_time{};
  std::optional<TimePoint> deadline;  // absolute wall deadline
  std::promise<ServeResponse> promise;

  int64_t seq_len() const {
    return static_cast<int64_t>(example.tokens.size());
  }
  bool expired(TimePoint now) const { return deadline && *deadline <= now; }
};

enum class AdmitResult {
  kOk,
  kQueueFull,
  kDeadlineExpired,
  kInvalidExample,
  kClosed,
  kUnknownModel,  // router: the named model has no serving lane
  kUnknownTier,   // router: model known, requested tier is not served
};

const char* admit_result_name(AdmitResult r);

struct RequestQueueConfig {
  size_t capacity = 4096;
};

/// MPMC bounded FIFO. Producers call submit(); the batcher drains it
/// wholesale under its own bucketing policy. close() stops admissions
/// and wakes every waiter (pending requests stay drainable).
class RequestQueue {
 public:
  explicit RequestQueue(const RequestQueueConfig& cfg) : cfg_(cfg) {}

  /// Deadline-aware admission. On kOk the request is owned by the
  /// queue; on any rejection the request is left untouched so the
  /// caller can fail its promise.
  AdmitResult submit(ServeRequest&& req);

  /// Move every pending request out (non-blocking).
  void drain_into(std::vector<ServeRequest>& out);

  /// Block until the queue is non-empty, closed, or `until` passes.
  /// Returns true when requests may be pending.
  bool wait_until(TimePoint until);

  void close();
  bool closed() const;
  size_t size() const;

 private:
  RequestQueueConfig cfg_;
  mutable Mutex mu_;
  std::condition_variable cv_;
  std::deque<ServeRequest> pending_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace fqbert::serve
