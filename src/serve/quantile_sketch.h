// Mergeable quantile sketch (DDSketch-style) for fleet-wide latency
// percentiles. Values are mapped into logarithmic buckets whose
// boundaries are powers of gamma = (1+alpha)/(1-alpha); the bucket for
// a value v > 0 is ceil(log(v)/log(gamma)), which guarantees any value
// reported back from a bucket is within relative error alpha of the
// true value. Because bucketing is a pure function of (value, alpha),
// merging two sketches (summing bucket counts) is bit-for-bit identical
// to building one sketch over the pooled samples — the property the
// proxy's STATS fan-out needs for exact shard-wide quantiles.
//
// Memory is O(number of distinct buckets): with alpha = 0.01 a latency
// range of 1us..100s spans ~930 buckets, so a sketch costs a few KB
// regardless of how many samples it has absorbed. Non-positive values
// (latency clock glitches) are counted in a dedicated zero bucket.
//
// Not thread-safe; ServeStats guards its sketch with the collector
// mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace fqbert::serve {

class QuantileSketch {
 public:
  static constexpr double kDefaultAlpha = 0.01;  // 1% relative error

  explicit QuantileSketch(double alpha = kDefaultAlpha);

  /// Rebuild a sketch from its serialized parts (the wire STATS path).
  /// Bucket indices out of order or duplicated are tolerated (counts
  /// merge), so a hostile peer can waste memory only up to the decoder's
  /// bucket-count cap, never corrupt quantiles structurally.
  static QuantileSketch from_parts(double alpha, uint64_t zero_count,
                                   int64_t max_us,
                                   const std::vector<std::pair<int32_t, uint64_t>>& buckets);

  void record(int64_t value_us);

  /// Sum bucket counts. Requires matching alpha (same bucketing
  /// function); mismatched-alpha merges fall back to re-recording the
  /// other sketch's bucket midpoints, preserving counts but not the
  /// exact-merge guarantee. All in-tree sketches share kDefaultAlpha.
  void merge(const QuantileSketch& other);

  /// Total recorded values (including the zero bucket).
  uint64_t count() const { return count_; }

  /// Quantile in microseconds, q in [0, 1]. Returns 0 for an empty
  /// sketch. q == 1 returns the exact tracked max.
  int64_t quantile_us(double q) const;

  double quantile_ms(double q) const {
    return static_cast<double>(quantile_us(q)) / 1000.0;
  }

  double alpha() const { return alpha_; }
  uint64_t zero_count() const { return zero_count_; }
  int64_t max_us() const { return max_us_; }
  const std::map<int32_t, uint64_t>& buckets() const { return buckets_; }

  void clear();

  bool operator==(const QuantileSketch& other) const {
    return alpha_ == other.alpha_ && zero_count_ == other.zero_count_ &&
           max_us_ == other.max_us_ && count_ == other.count_ &&
           buckets_ == other.buckets_;
  }

 private:
  int32_t bucket_index(int64_t value_us) const;
  /// Representative value for a bucket: the geometric midpoint
  /// gamma^(i - 1/2), which is within alpha of every value the bucket
  /// can hold.
  int64_t bucket_value(int32_t index) const;

  double alpha_;
  double log_gamma_;  // log((1+alpha)/(1-alpha)), cached
  uint64_t zero_count_ = 0;
  uint64_t count_ = 0;
  int64_t max_us_ = 0;  // exact max, not bucket-rounded
  std::map<int32_t, uint64_t> buckets_;
};

}  // namespace fqbert::serve
