// End-to-end request tracing. Every request carries one u64 trace ID
// minted at the first v3-speaking hop (the client, or the proxy when
// fronting a v1/v2 client) and a list of per-stage timestamps.
//
// Timestamp convention: each hop stamps stages in MICROSECONDS relative
// to its own first event (admission for a backend, frame receipt for
// the proxy), so stamps need no cross-host clock sync. When the proxy
// splices a backend's trace into its own, it shifts the backend stages
// by the forward offset measured on its own clock, producing one
// monotonic timeline per request — including across failover retries,
// where each attempt contributes a kProxyForward/kProxyRetry pair.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace fqbert::serve {

/// Stage codes are appended-only (they travel on the wire).
enum class TraceStage : uint8_t {
  kAdmitted = 0,       // backend: request accepted into its lane queue
  kBatchFormed = 1,    // backend: batcher flushed the batch it rode in
  kWorkerStart = 2,    // backend: worker began the batch forward pass
  kWorkerEnd = 3,      // backend: forward pass done, logits ready
  kResponded = 4,      // backend: response handed to the transport
  kProxyReceived = 5,  // proxy: serve frame fully received
  kProxyForward = 6,   // proxy: attempt dispatched to a backend
  kProxyRetry = 7,     // proxy: previous attempt failed, failing over
  kProxyResponse = 8,  // proxy: relay handed to the client connection
};
inline constexpr uint8_t kLastTraceStage =
    static_cast<uint8_t>(TraceStage::kProxyResponse);

struct TraceEvent {
  TraceStage stage = TraceStage::kAdmitted;
  int64_t t_us = 0;  // relative to the hop's first event (see above)
};

inline const char* trace_stage_name(TraceStage s) {
  switch (s) {
    case TraceStage::kAdmitted: return "admitted";
    case TraceStage::kBatchFormed: return "batch_formed";
    case TraceStage::kWorkerStart: return "worker_start";
    case TraceStage::kWorkerEnd: return "worker_end";
    case TraceStage::kResponded: return "responded";
    case TraceStage::kProxyReceived: return "proxy_received";
    case TraceStage::kProxyForward: return "proxy_forward";
    case TraceStage::kProxyRetry: return "proxy_retry";
    case TraceStage::kProxyResponse: return "proxy_response";
  }
  return "unknown";
}

/// Process-unique, never zero (zero on the wire means "unset; mint one
/// for me"). High bits carry per-process entropy from the clock at
/// first use so IDs minted by different processes in one trace tree
/// don't collide in practice.
inline uint64_t mint_trace_id() {
  static const uint64_t salt = [] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    uint64_t s = static_cast<uint64_t>(now.count()) * 0x9e3779b97f4a7c15ull ^
                 static_cast<uint64_t>(wall.count());
    s ^= s >> 29;
    return s << 20;  // leave 20 low bits for the counter
  }();
  static std::atomic<uint64_t> next{1};
  const uint64_t id = salt + next.fetch_add(1, std::memory_order_relaxed);
  return id == 0 ? 1 : id;
}

}  // namespace fqbert::serve
