// Dynamic batching scheduler. Pending requests are bucketed by
// (rounded-up) sequence length so one engine dispatch sees
// similar-length sequences; a bucket is flushed to a worker when it
// reaches max_batch, or when its oldest request has waited max_wait.
// Expired-deadline requests are failed here instead of reaching an
// engine.
#pragma once

#include <map>
#include <string_view>

#include "serve/request_queue.h"
#include "serve/stats.h"

namespace fqbert::serve {

struct BatcherConfig {
  int64_t max_batch = 8;
  Micros max_wait{2000};
  /// Bucket key = seq_len rounded up to a multiple of this. 1 means
  /// exact-length buckets; larger values trade scheduling latency for
  /// attention-cost homogeneity inside a batch.
  int64_t bucket_granularity = 8;
};

class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, const BatcherConfig& cfg,
                 ServeStats* stats = nullptr)
      : queue_(queue), cfg_(cfg), stats_(stats) {
    if (cfg_.max_batch < 1) cfg_.max_batch = 1;  // 0 would never flush
  }

  /// Blocks until a batch is ready (all requests from one bucket, FIFO
  /// within the bucket, at most max_batch). Returns false only when the
  /// queue is closed AND every pending request has been handed out —
  /// i.e. shutdown drains by construction. Safe to call from many
  /// worker threads.
  bool next_batch(std::vector<ServeRequest>& out);

  /// Non-blocking flavor for callers multiplexing several batchers on
  /// one worker set (the model router): pump the queue and pop a ready
  /// batch if one is due. Never sleeps; same flush policy as
  /// next_batch, including force-flush once the queue is closed.
  enum class Poll {
    kBatch,    // `out` holds a batch
    kIdle,     // nothing due; *next_flush = earliest max-wait expiry
               // (TimePoint::max() when empty)
    kDrained,  // queue closed and everything handed out (or aborted)
  };
  Poll poll_batch(std::vector<ServeRequest>& out, TimePoint* next_flush);

  /// Abort-mode shutdown, step 1: stop handing out batches. Call
  /// BEFORE RequestQueue::close() — otherwise a worker woken by
  /// close() can force-drain the buckets and complete requests the
  /// caller intended to fail, racing fail_pending on multi-core hosts.
  /// Batches already handed to workers still complete normally.
  void abort();

  /// Abort-mode shutdown, step 2: fail everything still pending (queue
  /// and buckets) with the given status. Call after the workers have
  /// been joined.
  void fail_pending(RequestStatus status);

  int64_t bucket_of(int64_t seq_len) const;
  size_t pending() const;

  /// Identity stamped on this batcher's flight-recorder events
  /// (kBatchFormed / kRequestTimedOut). Call once at lane construction,
  /// before any traffic — the fields are read without a lock on the
  /// batching hot path.
  void set_event_tag(std::string_view model, uint8_t tier);

 private:
  /// Move newly queued requests into their buckets (mu_ held).
  void pump_locked() REQUIRES(mu_);
  /// Pop a ready batch (mu_ held). When nothing is ready, returns false
  /// and sets *next_flush to the earliest max-wait expiry (or
  /// TimePoint::max() when idle). `force` flushes any non-empty bucket
  /// regardless of wait time (drain mode).
  bool pop_batch_locked(std::vector<ServeRequest>& out, TimePoint now,
                        bool force, TimePoint* next_flush) REQUIRES(mu_);

  RequestQueue& queue_;
  BatcherConfig cfg_;
  ServeStats* stats_;
  /// Journal identity; written only by set_event_tag before traffic.
  char event_tag_[24] = "default";
  uint8_t event_tier_ = 0;
  mutable Mutex mu_;
  std::map<int64_t, std::deque<ServeRequest>> buckets_ GUARDED_BY(mu_);
  size_t pending_ GUARDED_BY(mu_) = 0;
  bool aborted_ GUARDED_BY(mu_) = false;
};

}  // namespace fqbert::serve
