// Closed-loop synthetic load generator: N client threads, each
// submitting one request and blocking on its future before sending the
// next (the classic closed-loop model, so offered concurrency ==
// num_clients). Used by the `serve` / `loadgen` CLI subcommands and by
// bench_serve_throughput.
#pragma once

#include "serve/quantile_sketch.h"
#include "serve/server.h"
#include "serve/trace.h"
#include "tensor/rng.h"

namespace fqbert::serve {

struct LoadgenConfig {
  int num_clients = 4;
  int requests_per_client = 100;
  /// Sequence lengths sampled uniformly per request (clamped to the
  /// engine's max_seq_len).
  std::vector<int64_t> seq_len_mix{12, 16, 24};
  std::optional<Micros> deadline_budget;
  uint64_t seed = 1;
  /// Remote runs: trace every Nth request per client (a minted trace id
  /// rides the v3 frame; the response's per-stage timestamps land in
  /// LoadgenReport::traces). 0 disables sampling.
  int trace_every = 0;
  /// Keep one RequestRecord per request in LoadgenReport::records (the
  /// `--latency-csv` feed). Off by default: a long run's rows would
  /// otherwise grow the report unboundedly for nothing.
  bool collect_records = false;
};

/// One sampled end-to-end trace: the id, the client-observed wall
/// latency, and every stage the serving path stamped (admission /
/// batch / worker on a direct connection; plus the proxy hop's
/// received / forward / retry / response stages when routed through
/// one — a failover is visible as a kProxyRetry between forwards).
struct TraceSample {
  uint64_t trace_id = 0;
  int64_t wall_us = 0;
  std::vector<TraceEvent> stages;
};

/// One per-request row (collect_records): identity, outcome, wall
/// latency, and — when the request rode a trace id — its per-stage
/// timestamps. A transport-level failure records kEngineError with no
/// stages.
struct RequestRecord {
  uint64_t trace_id = 0;
  std::string model;  // "" = the server's default model
  uint8_t tier = 0;
  RequestStatus status = RequestStatus::kOk;
  int64_t latency_us = 0;
  std::vector<TraceEvent> stages;
};

struct LoadgenReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;   // queue-full or dead-on-arrival
  uint64_t timed_out = 0;  // admitted but expired in queue
  uint64_t failed = 0;     // shutdown / engine error
  double wall_s = 0.0;
  /// Client-observed latency of every kOk response, in the same
  /// mergeable sketch the server uses — so the client can print an
  /// exact-to-relative-error p99.9 no matter how long the run was.
  QuantileSketch latency_us;
  /// Sampled traces (trace_every > 0, remote runs only).
  std::vector<TraceSample> traces;
  /// Every request's row (collect_records only), client order within a
  /// thread, threads interleaved by completion.
  std::vector<RequestRecord> records;

  double throughput_rps() const {
    return wall_s > 0.0 ? static_cast<double>(ok) / wall_s : 0.0;
  }
  double latency_ms(double q) const { return latency_us.quantile_ms(q); }
};

/// Random token sequence shaped like the engine's inputs (token 0
/// reserved as [CLS]-ish anchor so batched CLS rows are well-defined).
/// Always admissible by InferenceServer::valid_example for the same
/// config: length clamped to [min(2, max_seq_len), max_seq_len], token
/// ids within vocab — degenerate configs (max_seq_len or vocab_size of
/// 1) are handled instead of feeding inverted ranges to clamp/randint.
nn::Example synth_example(Rng& rng, int64_t seq_len,
                          const nn::BertConfig& config);

/// Drive `server` closed-loop; blocks until every client finishes.
/// An empty seq_len_mix falls back to the engine's max_seq_len.
LoadgenReport run_loadgen(InferenceServer& server,
                          const nn::BertConfig& engine_config,
                          const LoadgenConfig& cfg);

/// One model in a remote multi-model traffic mix: requests carry `name`
/// (and, when non-zero, the precision `tier`) on the wire and are
/// synthesized against `config` (each served model can have a
/// different shape).
struct RemoteModelTarget {
  std::string name;  // "" = the server's default model
  nn::BertConfig config;
  uint8_t tier = 0;  // weight bit-width; 0 = the model's default tier
};

/// Remote flavor of run_loadgen: each client thread keeps ONE
/// persistent TransportClient connection to host:port for its whole
/// closed loop (reconnect-on-error only — per-request reconnects cost
/// ~25 us p50 on loopback; bench_net_overhead asserts the persistent
/// path wins). Transport-level failures (connect/send/recv/protocol)
/// count as `failed` and the next iteration reconnects.
LoadgenReport run_loadgen_remote(const std::string& host, uint16_t port,
                                 const nn::BertConfig& engine_config,
                                 const LoadgenConfig& cfg);

/// Multi-model traffic mix across the wire: every request picks a model
/// uniformly (seeded) from `models` and is routed to it by name —
/// exercising several router lanes from one closed-loop client fleet.
/// `models` must be non-empty.
LoadgenReport run_loadgen_remote(const std::string& host, uint16_t port,
                                 const std::vector<RemoteModelTarget>& models,
                                 const LoadgenConfig& cfg);

}  // namespace fqbert::serve
