#include "serve/shard/placement.h"

#include <algorithm>
#include <set>
#include <utility>

namespace fqbert::serve::shard {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kExplicit:
      return "explicit";
    case PlacementPolicy::kConsistentHash:
      return "consistent_hash";
  }
  return "unknown";
}

uint64_t placement_mix(uint64_t x) {
  // splitmix64 finalizer (public domain, Vigna).
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t placement_hash(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime
  }
  return placement_mix(h);
}

void HashRing::add(const std::string& backend) {
  const uint64_t seed = placement_hash(backend);
  points_.reserve(points_.size() + kVirtualNodes);
  for (int i = 0; i < kVirtualNodes; ++i) {
    points_.emplace_back(placement_mix(seed ^ (0x9e3779b97f4a7c15ULL *
                                               static_cast<uint64_t>(i + 1))),
                         backend);
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<std::string> HashRing::ordered(uint64_t key) const {
  std::vector<std::string> out;
  if (points_.empty()) return out;
  // First point at or after the key's position; wrap past the top.
  auto start = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(key, std::string()),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (start == points_.end()) start = points_.begin();
  const size_t base = static_cast<size_t>(start - points_.begin());
  std::set<std::string> seen;
  for (size_t step = 0; step < points_.size(); ++step) {
    const auto& point = points_[(base + step) % points_.size()];
    if (seen.insert(point.second).second) out.push_back(point.second);
  }
  return out;
}

std::vector<PlacementCell> PlacementSnapshot::candidates(
    const std::string& model, uint64_t route_key) const {
  auto it = by_model.find(model);
  if (it == by_model.end()) return {};
  if (policy == PlacementPolicy::kExplicit) return it->second;
  auto ring_it = rings.find(model);
  if (ring_it == rings.end()) return it->second;
  // Ring order over addresses; carry each replica's declared tiers in
  // that order (an address can hold several tiers of one model).
  std::vector<PlacementCell> out;
  out.reserve(it->second.size());
  for (const std::string& address : ring_it->second.ordered(route_key)) {
    for (const PlacementCell& cell : it->second) {
      if (cell.name == address) out.push_back(cell);
    }
  }
  return out;
}

PlacementTable::PlacementTable(PlacementPolicy policy) : policy_(policy) {
  auto initial = std::make_shared<PlacementSnapshot>();
  initial->policy = policy;
  snapshot_.store(std::move(initial), std::memory_order_release);
}

void PlacementTable::publish(
    std::map<std::string, std::vector<PlacementCell>> by_backend,
    std::vector<std::string> member_order) {
  auto next = std::make_shared<PlacementSnapshot>();
  next->epoch = snapshot()->epoch + 1;
  next->policy = policy_;
  next->by_backend = std::move(by_backend);
  next->member_order = std::move(member_order);
  // Walk members in JOIN order so by_model replica lists keep the
  // primary-first ordering the explicit policy promises.
  for (const std::string& address : next->member_order) {
    const auto& cells = next->by_backend.at(address);
    std::set<std::string> ring_joined;
    for (const PlacementCell& cell : cells) {
      next->by_model[cell.name].push_back({address, cell.tier});
      if (policy_ == PlacementPolicy::kConsistentHash &&
          ring_joined.insert(cell.name).second) {
        next->rings[cell.name].add(address);
      }
    }
  }
  snapshot_.store(std::move(next), std::memory_order_release);
}

bool PlacementTable::add_backend(const std::string& address,
                                 const std::vector<PlacementCell>& models,
                                 std::string* error) {
  MutexLock lock(mu_);
  auto current = snapshot();
  if (address.empty()) {
    if (error) *error = "backend address must be non-empty";
    return false;
  }
  if (models.empty()) {
    if (error) *error = "backend must declare at least one model";
    return false;
  }
  if (current->has_backend(address)) {
    if (error) *error = "backend " + address + " is already a member";
    return false;
  }
  auto by_backend = current->by_backend;
  auto member_order = current->member_order;
  auto& cells = by_backend[address];
  for (const PlacementCell& cell : models) {
    if (std::find(cells.begin(), cells.end(), cell) == cells.end()) {
      cells.push_back(cell);
    }
  }
  member_order.push_back(address);
  publish(std::move(by_backend), std::move(member_order));
  return true;
}

bool PlacementTable::remove_backend(const std::string& address,
                                    std::string* error) {
  MutexLock lock(mu_);
  auto current = snapshot();
  auto it = current->by_backend.find(address);
  if (it == current->by_backend.end()) {
    if (error) *error = "backend " + address + " is not a member";
    return false;
  }
  // Never strand a model: every model this backend serves must keep at
  // least one replica elsewhere.
  for (const PlacementCell& cell : it->second) {
    const auto& replicas = current->by_model.at(cell.name);
    bool elsewhere = false;
    for (const PlacementCell& replica : replicas) {
      if (replica.name != address) {
        elsewhere = true;
        break;
      }
    }
    if (!elsewhere) {
      if (error) {
        *error = "backend " + address + " is the last replica of model '" +
                 cell.name + "'; move it first";
      }
      return false;
    }
  }
  auto by_backend = current->by_backend;
  auto member_order = current->member_order;
  by_backend.erase(address);
  member_order.erase(
      std::remove(member_order.begin(), member_order.end(), address),
      member_order.end());
  publish(std::move(by_backend), std::move(member_order));
  return true;
}

bool PlacementTable::move_model(const std::string& model, int tier,
                                const std::string& from, const std::string& to,
                                std::string* error) {
  MutexLock lock(mu_);
  auto current = snapshot();
  auto from_it = current->by_backend.find(from);
  if (from_it == current->by_backend.end()) {
    if (error) *error = "source backend " + from + " is not a member";
    return false;
  }
  if (!current->has_backend(to)) {
    if (error) *error = "target backend " + to + " is not a member";
    return false;
  }
  if (from == to) {
    if (error) *error = "source and target backend are the same";
    return false;
  }
  const PlacementCell cell{model, tier};
  if (std::find(from_it->second.begin(), from_it->second.end(), cell) ==
      from_it->second.end()) {
    if (error) {
      *error = "backend " + from + " does not serve model '" + model + "'" +
               (tier != 0 ? " at that tier" : "");
    }
    return false;
  }
  auto by_backend = current->by_backend;
  auto& from_cells = by_backend[from];
  from_cells.erase(std::remove(from_cells.begin(), from_cells.end(), cell),
                   from_cells.end());
  // A backend left serving nothing stays a member (it can receive moves
  // back); REMOVE_BACKEND is the only way out of the table.
  auto& to_cells = by_backend[to];
  if (std::find(to_cells.begin(), to_cells.end(), cell) == to_cells.end()) {
    to_cells.push_back(cell);
  }
  publish(std::move(by_backend), current->member_order);
  return true;
}

}  // namespace fqbert::serve::shard
