// PlacementTable: the shard proxy's routing brain as a first-class,
// live-mutable subsystem. Placement used to be a table fixed at
// process start; this extracts it into versioned, immutable snapshots
// so membership and model placement can change while requests are in
// flight.
//
// Concurrency model (RCU-style):
//   * The data path calls snapshot() — an atomic shared_ptr load — and
//     routes the whole request against that immutable snapshot. No
//     per-request lock is taken and no mutator can tear the view.
//   * Mutators (add_backend / remove_backend / move_model) serialize
//     on a small mutex, build a NEW snapshot with the epoch bumped by
//     one, and publish it with an atomic store. In-flight requests
//     keep routing on the snapshot they resolved; the proxy compares
//     epochs after a failure to decide "the world changed under me,
//     re-resolve and retry" instead of erroring.
//
// Two policies:
//   * kExplicit — today's behavior, preserved bit-for-bit: each model
//     lists its replicas in declaration order and every request
//     prefers them in that order (deterministic primary, failover down
//     the list).
//   * kConsistentHash — each model's replicas are placed on a 64-bit
//     hash ring (kVirtualNodes points per backend); a request's route
//     key picks the arc owner, and the failover order is the clockwise
//     walk. A replica that joins takes over ONLY the arcs its own
//     points claim — every other key keeps its previous owner, so a
//     join warms one slice of the fleet instead of remapping all of it
//     (verified by a unit test).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "platform/thread_annotations.h"

namespace fqbert::serve::shard {

/// How a model's replica list is ordered for a given request. Values
/// travel in kPlacement frames as u8; append-only.
enum class PlacementPolicy : uint8_t {
  kExplicit = 0,        // declaration order, same for every request
  kConsistentHash = 1,  // hash-ring order keyed by the request
};

/// Stable short name ("explicit" / "consistent_hash") for JSON/CLI.
const char* placement_policy_name(PlacementPolicy policy);

/// 64-bit string hash (FNV-1a folded through a splitmix64 finalizer —
/// cheap, well-mixed, stable across runs so ring layouts are
/// reproducible in tests).
uint64_t placement_hash(std::string_view s);
/// splitmix64 finalizer over an integer key (route keys, vnode seeds).
uint64_t placement_mix(uint64_t x);

/// One (model, tier) placement cell. On the model side `name` is a
/// backend address; on the backend side it is a model name — the
/// snapshot keeps both orientations.
struct PlacementCell {
  std::string name;
  int tier = 0;  // declared weight_bits, 0 = backend's native tier

  bool operator==(const PlacementCell&) const = default;
};

/// Consistent-hash ring over backend addresses. Immutable once inside
/// a snapshot; PlacementTable rebuilds rings when membership changes.
class HashRing {
 public:
  static constexpr int kVirtualNodes = 64;

  void add(const std::string& backend);
  bool empty() const { return points_.empty(); }

  /// Clockwise walk from `key`'s arc: every distinct backend, nearest
  /// owner first. The full failover order for this key.
  std::vector<std::string> ordered(uint64_t key) const;

 private:
  // (point hash, backend) sorted by hash; ties broken by address so
  // the layout is deterministic.
  std::vector<std::pair<uint64_t, std::string>> points_;
};

/// One immutable placement generation. Built by PlacementTable under
/// its mutex, then published read-only; every member is safe to read
/// from any thread without synchronization.
struct PlacementSnapshot {
  uint64_t epoch = 0;
  PlacementPolicy policy = PlacementPolicy::kExplicit;
  /// Backend addresses in JOIN order. by_model replica lists follow
  /// this order, which is what makes the explicit policy deterministic:
  /// the first backend to declare a model is its primary, exactly as
  /// the fixed-table proxy behaved.
  std::vector<std::string> member_order;
  /// model -> replicas (join order; the explicit-policy preference
  /// order).
  std::map<std::string, std::vector<PlacementCell>> by_model;
  /// backend address -> (model, tier) cells it serves (the wire /
  /// debug orientation).
  std::map<std::string, std::vector<PlacementCell>> by_backend;
  /// model -> ring over its replica addresses (consistent-hash policy
  /// only; empty map under kExplicit).
  std::map<std::string, HashRing> rings;

  bool has_backend(const std::string& address) const {
    return by_backend.count(address) != 0;
  }
  bool has_model(const std::string& model) const {
    return by_model.count(model) != 0;
  }

  /// Ordered replica candidates for `model`: declaration order under
  /// kExplicit, ring order keyed by `route_key` under kConsistentHash.
  /// Empty when the model is not placed anywhere.
  std::vector<PlacementCell> candidates(const std::string& model,
                                        uint64_t route_key) const;
};

/// The live table: owns the current snapshot and serializes mutation.
class PlacementTable {
 public:
  explicit PlacementTable(PlacementPolicy policy = PlacementPolicy::kExplicit);

  /// The current generation (atomic load; never null). Route a whole
  /// request against ONE snapshot — do not re-fetch mid-decision.
  std::shared_ptr<const PlacementSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }
  uint64_t epoch() const { return snapshot()->epoch; }
  PlacementPolicy policy() const { return snapshot()->policy; }

  /// Add `address` serving `models` (each a (model, tier) cell; at
  /// least one required, names/tier validated by the caller). Fails if
  /// the address is already a member.
  bool add_backend(const std::string& address,
                   const std::vector<PlacementCell>& models,
                   std::string* error = nullptr);

  /// Remove `address` from every model's replica list. Fails if it is
  /// not a member or if it is the LAST replica of any model — placement
  /// never strands a model with zero replicas; move or unload first.
  bool remove_backend(const std::string& address, std::string* error = nullptr);

  /// Move the (model, tier) cell from backend `from` to backend `to`.
  /// `to` must already be a member (its serving set gains the cell;
  /// duplicates collapse). Fails when `from` does not hold the cell.
  bool move_model(const std::string& model, int tier, const std::string& from,
                  const std::string& to, std::string* error = nullptr);

 private:
  /// Rebuild by_model + rings from by_backend (walked in member_order),
  /// bump the epoch, publish.
  void publish(std::map<std::string, std::vector<PlacementCell>> by_backend,
               std::vector<std::string> member_order) REQUIRES(mu_);

  const PlacementPolicy policy_;
  Mutex mu_;  // serializes mutators (never held on the read path)
  std::atomic<std::shared_ptr<const PlacementSnapshot>> snapshot_;
};

}  // namespace fqbert::serve::shard
