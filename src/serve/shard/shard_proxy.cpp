#include "serve/shard/shard_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>
#include <utility>

#include "serve/debug_text.h"
#include "serve/flight_recorder.h"

namespace fqbert::serve::shard {

namespace {

/// Poll tick for the accept and per-connection loops: how quickly
/// stop() is observed when a socket is silent.
constexpr int kLoopTickMs = 100;

/// How many times one request may re-resolve its replica list on a
/// newer placement epoch before giving a terminal answer. One flip is
/// the normal migration case; the bound only matters under
/// pathological epoch flapping.
constexpr int kMaxEpochRounds = 4;

/// Retryable serve outcomes: the backend answered, but with a status
/// that means "this replica cannot serve right now" (draining shutdown,
/// engine failure) rather than a verdict about the request itself.
/// Inference is idempotent, so the next replica gets a clean try.
bool status_is_retryable(RequestStatus s) {
  return s == RequestStatus::kShutdown || s == RequestStatus::kEngineError;
}

/// Split "name@int4" / "name@4" into (name, tier); a bare name reads
/// tier 0 (the backend's default tier). False on a malformed suffix.
bool parse_model_spec(const std::string& spec, std::string* name,
                      int* tier) {
  const size_t at = spec.rfind('@');
  if (at == std::string::npos) {
    *name = spec;
    *tier = 0;
    return true;
  }
  *name = spec.substr(0, at);
  std::string t = spec.substr(at + 1);
  if (t.rfind("int", 0) == 0) t = t.substr(3);
  if (t.size() != 1 || t[0] < '2' || t[0] > '8') return false;
  *tier = t[0] - '0';
  return !name->empty();
}

/// Validate + parse a backend's model declarations into placement
/// cells. Shared by the pre-start and live add paths so both refuse
/// the same malformed inputs with the same messages.
bool parse_backend_models(const std::string& address,
                          const std::vector<std::string>& models,
                          std::vector<PlacementCell>* cells,
                          std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (models.empty()) return fail("backend " + address + " declares no models");
  std::set<std::pair<std::string, int>> seen;
  cells->clear();
  cells->reserve(models.size());
  for (const std::string& spec : models) {
    std::string name;
    int tier = 0;
    if (spec.empty()) return fail("empty model name in backend declaration");
    if (!parse_model_spec(spec, &name, &tier))
      return fail("malformed tier suffix in '" + spec +
                  "' (expected name, name@intN or name@N, N in [2, 8])");
    if (name.size() > net::kMaxNameLen)
      return fail("model name '" + name + "' exceeds the wire limit");
    if (!seen.insert({name, tier}).second)
      return fail("model '" + spec + "' repeated within one backend");
    cells->push_back({std::move(name), tier});
  }
  return true;
}

}  // namespace

const char* backend_state_name(BackendState s) {
  switch (s) {
    case BackendState::kHealthy: return "healthy";
    case BackendState::kSuspect: return "suspect";
    case BackendState::kDown: return "down";
  }
  return "?";
}

ShardProxy::ShardProxy(const ShardProxyConfig& cfg)
    : cfg_(cfg), placement_(cfg.policy) {
  if (cfg_.max_connections < 1) cfg_.max_connections = 1;
  if (cfg_.suspect_after < 1) cfg_.suspect_after = 1;
  if (cfg_.down_after < cfg_.suspect_after) cfg_.down_after = cfg_.suspect_after;
  if (cfg_.recover_after < 1) cfg_.recover_after = 1;
  // Publish the empty generation so routing() is never null.
  MutexLock lock(control_mu_);
  publish_routing({});
}

ShardProxy::~ShardProxy() { stop(); }

void ShardProxy::publish_routing(
    std::map<std::string, std::shared_ptr<Backend>> backends) {
  auto next = std::make_shared<RoutingState>();
  next->placement = placement_.snapshot();
  next->order.reserve(backends.size());
  for (const std::string& address : next->placement->member_order)
    next->order.push_back(backends.at(address));
  next->backends = std::move(backends);
  routing_.store(std::move(next), std::memory_order_release);
}

bool ShardProxy::add_backend(const std::string& host, uint16_t port,
                             const std::vector<std::string>& models,
                             std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (running_) return fail("cannot add a backend to a running proxy");
  const std::string address = host + ":" + std::to_string(port);
  std::vector<PlacementCell> cells;
  if (!parse_backend_models(address, models, &cells, error)) return false;

  MutexLock lock(control_mu_);
  if (routing()->backends.count(address) != 0)
    return fail("backend " + address + " declared twice");

  net::ClientPoolConfig pool_cfg;
  pool_cfg.capacity = cfg_.pool_capacity;
  pool_cfg.connect_timeout = cfg_.connect_timeout;
  pool_cfg.recv_timeout = cfg_.call_timeout;
  auto backend = std::make_shared<Backend>(host, port, models, pool_cfg);
  {
    // Pre-start, single-threaded — locked only to satisfy the
    // thread-safety analysis, which cannot see the publication order.
    MutexLock health_lock(backend->health_mu);
    backend->health.set_timeouts(cfg_.health_timeout, cfg_.health_timeout);
  }
  if (!placement_.add_backend(address, cells, error)) return false;
  if (default_model_.empty()) default_model_ = cells.front().name;
  auto backends = routing()->backends;
  backends[address] = std::move(backend);
  publish_routing(std::move(backends));
  return true;
}

bool ShardProxy::start() {
  if (running_) return true;
  if (routing()->order.empty()) {
    std::fprintf(stderr, "shard proxy: no backends declared\n");
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::perror("shard proxy: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "shard proxy: bad bind address %s\n",
                 cfg_.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    std::perror("shard proxy: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  for (const auto& b : routing()->order) b->pool.reopen();  // undo a stop()
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
  return true;
}

void ShardProxy::stop() {
  if (!running_) return;
  {
    // Set under the cv mutex: notifying between the health loop's
    // predicate check and its sleep would otherwise be a lost wakeup
    // (stop() would stall a full health_interval).
    MutexLock lock(health_cv_mu_);
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Abort in-flight forwards FIRST: a connection thread blocked on a
  // backend recv would otherwise hold stop() for up to call_timeout.
  for (const auto& b : routing()->order) b->pool.shutdown_all();

  std::map<uint64_t, std::thread> threads;
  {
    MutexLock lock(conns_mu_);
    // Wake per-connection threads blocked in poll/recv on their client
    // socket; each closes its own fd on exit.
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& [id, t] : threads)
    if (t.joinable()) t.join();

  // Re-fetch: an admin frame may have changed membership between the
  // first snapshot and the last connection thread exiting. No mutator
  // can run past this point.
  for (const auto& b : routing()->order) {
    b->pool.shutdown_all();
    b->pool.clear();
    MutexLock lock(b->health_mu);
    b->health.close();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

std::vector<std::string> ShardProxy::model_names() const {
  const auto placement = placement_.snapshot();
  std::vector<std::string> names;
  names.reserve(placement->by_model.size());
  for (const auto& [name, replicas] : placement->by_model)
    names.push_back(name);
  return names;
}

std::vector<ShardProxy::BackendStatus> ShardProxy::backend_status() const {
  const auto routing = this->routing();
  std::vector<BackendStatus> out;
  out.reserve(routing->order.size());
  for (const auto& b : routing->order) {
    BackendStatus s;
    s.address = b->address;
    s.models = b->models;
    MutexLock lock(b->mu);
    s.state = b->state;
    s.health_ok = b->health_ok;
    s.health_failed = b->health_failed;
    s.forwarded = b->forwarded;
    s.forward_failures = b->forward_failures;
    s.recoveries = b->recoveries;
    out.push_back(std::move(s));
  }
  return out;
}

ShardProxy::Counters ShardProxy::counters() const {
  Counters c;
  c.accepted = accepted_;
  c.served = served_;
  c.failovers = failovers_;
  c.exhausted = exhausted_;
  c.unknown_model = unknown_model_;
  c.unknown_tier = unknown_tier_;
  c.protocol_errors = protocol_errors_;
  c.admin_frames = admin_frames_;
  c.health_transitions = health_transitions_;
  c.placement_changes = placement_changes_;
  c.epoch_retries = epoch_retries_;
  return c;
}

net::WirePlacement ShardProxy::placement_view() const {
  const auto routing = this->routing();
  net::WirePlacement wire;
  wire.epoch = routing->placement->epoch;
  wire.policy = static_cast<uint8_t>(routing->placement->policy);
  wire.default_model = default_model_;
  wire.backends.reserve(routing->order.size());
  for (const auto& backend : routing->order) {
    net::WireBackendPlacement row;
    row.address = backend->address;
    row.state = static_cast<uint8_t>(backend_state(*backend));
    const auto& cells = routing->placement->by_backend.at(backend->address);
    row.models.reserve(cells.size());
    for (const PlacementCell& cell : cells)
      row.models.push_back({cell.name, static_cast<uint8_t>(cell.tier)});
    wire.backends.push_back(std::move(row));
  }
  return wire;
}

// ---------------------------------------------------------------------------
// Dynamic placement mutators
// ---------------------------------------------------------------------------

void ShardProxy::drain_backend(Backend& backend) {
  const TimePoint deadline = Clock::now() + cfg_.drain_timeout;
  while (backend.inflight.load(std::memory_order_acquire) != 0) {
    if (stopping_) return;  // stop() aborts the forwards itself
    if (cfg_.drain_timeout.count() > 0 && Clock::now() >= deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool ShardProxy::admin_add_backend(const std::string& host, uint16_t port,
                                   const std::vector<std::string>& models,
                                   std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  const std::string address = host + ":" + std::to_string(port);
  std::vector<PlacementCell> cells;
  if (!parse_backend_models(address, models, &cells, error)) return false;

  MutexLock lock(control_mu_);
  if (routing()->backends.count(address) != 0)
    return fail("backend " + address + " is already a member");

  net::ClientPoolConfig pool_cfg;
  pool_cfg.capacity = cfg_.pool_capacity;
  pool_cfg.connect_timeout = cfg_.connect_timeout;
  pool_cfg.recv_timeout = cfg_.call_timeout;
  auto backend = std::make_shared<Backend>(host, port, models, pool_cfg);
  {
    MutexLock health_lock(backend->health_mu);
    backend->health.set_timeouts(cfg_.health_timeout, cfg_.health_timeout);
  }
  // Admit only a reachable backend: an unreachable one would start in
  // the replica rotation and blackhole its share of traffic until the
  // health machine condemned it.
  bool reachable = false;
  {
    MutexLock health_lock(backend->health_mu);
    if (backend->health.connect(host, port)) {
      const auto info = backend->health.query_info("");
      reachable = info.has_value() ||
                  (backend->health.connected() &&
                   backend->health.error_kind() == net::ClientError::kNone);
    }
  }
  if (!reachable)
    return fail("backend " + address + " is unreachable (health probe failed)");

  if (!placement_.add_backend(address, cells, error)) return false;
  if (!running_ && default_model_.empty())
    default_model_ = cells.front().name;
  auto backends = routing()->backends;
  backends[address] = std::move(backend);
  publish_routing(std::move(backends));
  ++placement_changes_;
  FlightRecorder::instance().record(FlightEventType::kBackendAdded, address,
                                    0, 0, 0, 0, placement_.epoch());
  return true;
}

bool ShardProxy::admin_remove_backend(const std::string& address,
                                      std::string* error) {
  std::shared_ptr<Backend> victim;
  {
    MutexLock lock(control_mu_);
    const auto current = routing();
    auto it = current->backends.find(address);
    if (it == current->backends.end()) {
      if (error != nullptr) *error = "backend " + address + " is not a member";
      return false;
    }
    // The last-replica rule lives in the table: removal that would
    // strand a model is refused before any epoch flips.
    if (!placement_.remove_backend(address, error)) return false;
    victim = it->second;
    auto backends = current->backends;
    backends.erase(address);
    publish_routing(std::move(backends));
    ++placement_changes_;
    FlightRecorder::instance().record(FlightEventType::kBackendRemoved,
                                      address, 0, 0, 0, 0, placement_.epoch());
  }
  // Epoch already flipped: no NEW request can route here. Wait out the
  // forwards that resolved on the old epoch, then retire the pooled
  // connections — drain-first, so nothing in flight is cut.
  drain_backend(*victim);
  victim->pool.shutdown_all();
  victim->pool.clear();
  {
    MutexLock health_lock(victim->health_mu);
    victim->health.close();
  }
  // `victim` itself stays alive through any routing snapshot still
  // pinned by an in-flight request; the last release runs ~Backend and
  // closes whatever descriptors remain.
  return true;
}

bool ShardProxy::admin_move_model(const std::string& model, uint8_t tier,
                                  const std::string& from,
                                  const std::string& to,
                                  const std::string& path,
                                  std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (model.empty()) return fail("model name must be non-empty");
  if (!net::wire_tier_valid(tier))
    return fail("tier must be 0 or a weight bit-width in [2, 8]");

  MutexLock lock(control_mu_);
  const auto current = routing();
  auto from_it = current->backends.find(from);
  if (from_it == current->backends.end())
    return fail("source backend " + from + " is not a member");
  auto to_it = current->backends.find(to);
  if (to_it == current->backends.end())
    return fail("target backend " + to + " is not a member");
  if (from == to) return fail("source and target backend are the same");
  const PlacementCell cell{model, static_cast<int>(tier)};
  const auto& from_cells = current->placement->by_backend.at(from);
  if (std::find(from_cells.begin(), from_cells.end(), cell) ==
      from_cells.end())
    return fail("backend " + from + " does not serve model '" + model + "'" +
                (tier != 0 ? " at that tier" : ""));

  // Step 1: make the target actually serve (model, tier) BEFORE any
  // routing changes — flipping placement toward an engine that is not
  // loaded yet would bounce requests mid-migration.
  Backend& target = *to_it->second;
  if (!path.empty()) {
    bool load_ok = false;
    std::string load_message;
    const bool transport_ok =
        with_backend_conn(target, [&](net::ClientPool::Handle& conn) {
          load_ok = conn->load_model(model, path, &load_message, tier);
          return load_ok || (conn->connected() &&
                             conn->error_kind() == net::ClientError::kNone);
        });
    if (!transport_ok)
      return fail("target backend " + to + " is unreachable");
    if (!load_ok)
      return fail("LOAD on target " + to + " failed: " + load_message);
  } else {
    std::optional<std::vector<net::WireModelEntry>> list;
    const bool transport_ok =
        with_backend_conn(target, [&](net::ClientPool::Handle& conn) {
          list = conn->list_models_tiered();
          return list.has_value();
        });
    if (!transport_ok || !list)
      return fail("target backend " + to + " is unreachable");
    bool present = false;
    for (const net::WireModelEntry& e : *list)
      if (e.name == model && (tier == 0 || e.tier == tier)) {
        present = true;
        break;
      }
    if (!present) {
      if (tier == 0)
        return fail("target " + to + " does not serve model '" + model +
                    "' and no engine path was given");
      // Mint the tier from the target's already-loaded default engine
      // (the empty-path LOAD dialect).
      bool mint_ok = false;
      std::string mint_message;
      const bool mint_transport_ok =
          with_backend_conn(target, [&](net::ClientPool::Handle& conn) {
            mint_ok = conn->load_model(model, "", &mint_message, tier);
            return mint_ok || (conn->connected() &&
                               conn->error_kind() == net::ClientError::kNone);
          });
      if (!mint_transport_ok)
        return fail("target backend " + to + " is unreachable");
      if (!mint_ok)
        return fail("LOAD on target " + to + " failed: " + mint_message);
    }
  }

  // Step 2: flip the placement epoch. From this instant every new
  // request for the cell routes to the target.
  if (!placement_.move_model(model, static_cast<int>(tier), from, to, error))
    return false;
  publish_routing(current->backends);
  ++placement_changes_;
  FlightRecorder::instance().record(FlightEventType::kPlacementChanged, model,
                                    0, tier, 0, 0, placement_.epoch());

  // Step 3: drain the source's in-flight forwards (requests that
  // resolved on the old epoch), then unload the engine there. Requests
  // for OTHER models keep flowing to the source throughout.
  Backend& source = *from_it->second;
  drain_backend(source);

  bool still_has_model = false;
  for (const PlacementCell& c : placement_.snapshot()->by_backend.at(from))
    if (c.name == model) {
      still_has_model = true;
      break;
    }
  std::string warning;
  if (still_has_model) {
    // A tier-0 UNLOAD drops every tier and a tiered UNLOAD may share
    // its lane with the default declaration — with another cell of the
    // same model still placed here, leaving the engine loaded is the
    // only safe call.
    warning = "source " + from + " still serves model '" + model +
              "'; engine left loaded";
  } else {
    bool unload_ok = false;
    std::string unload_message;
    const bool transport_ok =
        with_backend_conn(source, [&](net::ClientPool::Handle& conn) {
          unload_ok = conn->unload_model(model, &unload_message, tier);
          return unload_ok || (conn->connected() &&
                               conn->error_kind() == net::ClientError::kNone);
        });
    if (!transport_ok || !unload_ok)
      warning = "UNLOAD on source " + from + " failed (" +
                (transport_ok ? unload_message : "unreachable") +
                "); placement updated anyway";
  }
  if (error != nullptr) *error = warning;
  return true;
}

// ---------------------------------------------------------------------------
// Health checking and the backend state machine
// ---------------------------------------------------------------------------

void ShardProxy::note_outcome(Backend& backend, bool success,
                              bool health_probe) {
  // Journal every state-machine edge (taken below, under backend.mu)
  // with both endpoints packed into one detail byte: (from << 4) | to.
  const auto journal_edge = [&backend](BackendState from, BackendState to) {
    FlightRecorder::instance().record(
        FlightEventType::kHealthTransition, backend.address, 0, 0,
        static_cast<uint16_t>((static_cast<uint16_t>(from) << 4) |
                              static_cast<uint16_t>(to)));
  };
  MutexLock lock(backend.mu);
  if (success) {
    if (health_probe)
      ++backend.health_ok;
    else
      ++backend.forwarded;
    backend.fail_streak = 0;
    ++backend.ok_streak;
    if (backend.state != BackendState::kHealthy &&
        backend.ok_streak >= cfg_.recover_after) {
      journal_edge(backend.state, BackendState::kHealthy);
      backend.state = BackendState::kHealthy;
      ++backend.recoveries;
      ++health_transitions_;
    }
  } else {
    if (health_probe)
      ++backend.health_failed;
    else
      ++backend.forward_failures;
    backend.ok_streak = 0;
    ++backend.fail_streak;
    if (backend.state == BackendState::kHealthy &&
        backend.fail_streak >= cfg_.suspect_after) {
      journal_edge(backend.state, BackendState::kSuspect);
      backend.state = BackendState::kSuspect;
      ++health_transitions_;
    }
    if (backend.state != BackendState::kDown &&
        backend.fail_streak >= cfg_.down_after) {
      journal_edge(backend.state, BackendState::kDown);
      backend.state = BackendState::kDown;
      ++health_transitions_;
    }
  }
}

BackendState ShardProxy::backend_state(const Backend& backend) const {
  MutexLock lock(backend.mu);
  return backend.state;
}

void ShardProxy::run_health_round() {
  // Probe concurrently: serially, one blackholed backend would burn
  // its whole health_timeout before the NEXT backend is even looked
  // at, coupling every backend's detection latency to the slowest.
  // The round pins ONE routing snapshot; a backend added mid-round is
  // probed next round, a backend removed mid-round gets one harmless
  // farewell probe (its shared_ptr keeps it alive).
  const auto routing = this->routing();
  std::vector<std::thread> probes;
  probes.reserve(routing->order.size());
  for (const auto& b : routing->order) {
    probes.emplace_back([this, backend = b] {
      bool ok = false;
      {
        MutexLock lock(backend->health_mu);
        if (!backend->health.connected())
          backend->health.connect(backend->host, backend->port);
        if (backend->health.connected()) {
          // The ping asks for the backend's default model shape. A
          // backend with no default lane answers in-band (error_kind
          // stays kNone, connection stays aligned) — its TRANSPORT is
          // healthy, which is all the proxy's state machine judges.
          const auto info = backend->health.query_info("");
          ok = info.has_value() ||
               (backend->health.connected() &&
                backend->health.error_kind() == net::ClientError::kNone);
        }
      }
      note_outcome(*backend, ok, /*health_probe=*/true);
    });
  }
  for (std::thread& t : probes) t.join();
}

void ShardProxy::check_backends_now() { run_health_round(); }

void ShardProxy::health_loop() {
  for (;;) {
    {
      MutexLock lock(health_cv_mu_);
      if (stopping_) return;
      // The predicate reads only the atomic stopping_ (no guarded
      // state), so the lambda is safe under the thread-safety analysis.
      health_cv_.wait_for(lock.native(), cfg_.health_interval,
                          [this] { return stopping_.load(); });
      if (stopping_) return;
    }
    run_health_round();
  }
}

// ---------------------------------------------------------------------------
// Front-side socket plumbing
// ---------------------------------------------------------------------------

void ShardProxy::accept_loop() {
  while (!stopping_) {
    // Reap finished connection threads (they cannot join themselves).
    {
      MutexLock lock(conns_mu_);
      for (const uint64_t id : finished_conns_) {
        auto it = conn_threads_.find(id);
        if (it != conn_threads_.end()) {
          it->second.join();
          conn_threads_.erase(it);
        }
      }
      finished_conns_.clear();
    }

    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kLoopTickMs);
    if (ready <= 0) continue;
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    {
      MutexLock lock(conns_mu_);
      if (conn_fds_.size() >= cfg_.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const uint64_t id = next_conn_id_++;
      conn_fds_[id] = fd;
      conn_threads_[id] = std::thread([this, id, fd] {
        serve_connection(id, fd);
        // Erase the map entry and close the fd under ONE lock hold:
        // stop() iterates conn_fds_ to shutdown() live sockets, and a
        // close outside the lock could free the fd number for reuse
        // while stop() still holds it.
        MutexLock exit_lock(conns_mu_);
        conn_fds_.erase(id);
        ::close(fd);
        finished_conns_.push_back(id);
      });
      ++accepted_;
    }
  }
}

void ShardProxy::serve_connection(uint64_t conn_id, int fd) {
  (void)conn_id;
  std::vector<uint8_t> in;
  std::vector<uint8_t> buf(64 * 1024);
  bool ok = true;
  while (ok && !stopping_) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kLoopTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    in.insert(in.end(), buf.data(), buf.data() + n);

    size_t pos = 0;
    while (ok) {
      net::FrameHeader hdr;
      const net::DecodeStatus st =
          net::decode_header(in.data() + pos, in.size() - pos, &hdr);
      if (st == net::DecodeStatus::kNeedMore) break;
      if (st == net::DecodeStatus::kError) {
        ++protocol_errors_;
        ok = false;
        break;
      }
      const size_t frame_len = net::kHeaderSize + hdr.payload_len;
      if (in.size() - pos < frame_len) break;
      ok = handle_frame(fd, hdr, in.data() + pos, frame_len);
      if (ok) pos += frame_len;
    }
    if (pos > 0) in.erase(in.begin(), in.begin() + pos);
  }
  // The fd is closed by the spawning lambda (under conns_mu_, together
  // with the conn_fds_ erase) — not here, where it would race stop().
}

bool ShardProxy::send_to_client(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------------

bool ShardProxy::handle_frame(int fd, const net::FrameHeader& hdr,
                              const uint8_t* frame, size_t frame_len) {
  // lint-wire: complete frame — decode_header validated payload_len
  const uint8_t* payload = frame + net::kHeaderSize;
  const size_t len = hdr.payload_len;
  switch (hdr.type) {
    case net::FrameType::kServeRequest:
      return handle_serve(fd, hdr, frame, frame_len);
    case net::FrameType::kInfoRequest:
      return handle_info(fd, hdr, payload, len);
    case net::FrameType::kListModels:
      return handle_list(fd, hdr, len);
    case net::FrameType::kStatsRequest:
      return handle_stats(fd, hdr, payload, len);
    case net::FrameType::kLoadModel:
    case net::FrameType::kUnloadModel: {
      // Mutating a backend's model set behind the table's back would
      // desynchronize routing. Refused in-band; MOVE_MODEL is the
      // placement-aware way to migrate an engine.
      std::string a, b;
      uint8_t tier = 0;
      const bool parsed =
          hdr.type == net::FrameType::kLoadModel
              ? net::decode_load_model(payload, len, hdr.version, &a, &b,
                                       &tier)
              : net::decode_unload_model(payload, len, hdr.version, &a,
                                         &tier);
      if (!parsed) {
        ++protocol_errors_;
        return false;
      }
      ++admin_frames_;
      std::vector<uint8_t> out;
      net::encode_admin_response(
          false,
          "LOAD/UNLOAD is not routed through the shard proxy; target the "
          "backend directly and keep the placement table in sync",
          out);
      return send_to_client(fd, out);
    }
    case net::FrameType::kDumpEvents:
      return handle_dump_events(fd, hdr, payload, len);
    case net::FrameType::kAddBackend:
      return handle_add_backend(fd, hdr, payload, len);
    case net::FrameType::kRemoveBackend:
      return handle_remove_backend(fd, hdr, payload, len);
    case net::FrameType::kMoveModel:
      return handle_move_model(fd, hdr, payload, len);
    case net::FrameType::kGetPlacement:
      return handle_get_placement(fd, hdr, len);
    case net::FrameType::kInfoResponse:
    case net::FrameType::kServeResponse:
    case net::FrameType::kAdminResponse:
    case net::FrameType::kModelList:
    case net::FrameType::kStatsResponse:
    case net::FrameType::kEventDump:
    case net::FrameType::kPlacement:
      ++protocol_errors_;  // proxy-bound streams must not carry responses
      return false;
  }
  ++protocol_errors_;
  return false;
}

std::vector<std::shared_ptr<ShardProxy::Backend>> ShardProxy::candidates_for(
    const RoutingState& routing, const std::string& model, uint8_t tier,
    uint64_t route_key) const {
  const std::vector<PlacementCell> placed =
      routing.placement->candidates(model, route_key);
  if (placed.empty()) return {};
  // Preference groups. A tiered request tries entries pinned to that
  // exact tier first, then generic entries (an undeclared replica may
  // still carry the tier, and answers kRejectedUnknownTier if not);
  // entries pinned to a DIFFERENT tier are never candidates. A
  // default-tier request prefers generic entries but falls back to
  // pinned ones — they serve the model too, at whatever their default
  // lane runs. Within each group, non-down before down; a backend
  // appears at most once even if several of its entries match. The
  // cells arrive already ordered by the placement policy (declaration
  // order, or the hash-ring walk for this route key).
  std::vector<std::shared_ptr<Backend>> order;
  order.reserve(placed.size());
  std::set<const Backend*> taken;
  const auto add_group = [&](const std::function<bool(int)>& match) {
    for (const bool want_up : {true, false})
      for (const PlacementCell& cell : placed) {
        if (!match(cell.tier)) continue;
        const auto it = routing.backends.find(cell.name);
        if (it == routing.backends.end()) continue;
        const bool up = backend_state(*it->second) != BackendState::kDown;
        if (up != want_up) continue;
        if (taken.insert(it->second.get()).second)
          order.push_back(it->second);
      }
  };
  if (tier == 0) {
    add_group([](int t) { return t == 0; });
    add_group([](int t) { return t != 0; });
  } else {
    add_group([&](int t) { return t == tier; });
    add_group([](int t) { return t == 0; });
  }
  return order;
}

bool ShardProxy::forward_serve_once(Backend& backend, const uint8_t* frame,
                                    size_t frame_len,
                                    uint64_t expect_correlation,
                                    net::FrameHeader* rhdr,
                                    std::vector<uint8_t>& rpayload) {
  return with_backend_conn(backend, [&](net::ClientPool::Handle& conn) {
    if (!conn->send_raw(frame, frame_len)) return false;
    if (!conn->recv_raw(rhdr, rpayload)) return false;
    if (rhdr->type != net::FrameType::kServeResponse) {
      conn.discard();  // backend speaking out of turn: do not reuse
      return false;
    }
    uint64_t corr = 0;
    RequestStatus status{};
    if (!net::peek_serve_response(rpayload.data(), rpayload.size(), &corr,
                                  &status) ||
        corr != expect_correlation) {
      conn.discard();
      return false;
    }
    return true;
  });
}

void ShardProxy::synthesize_serve_response(int fd, uint8_t client_version,
                                           uint64_t correlation_id,
                                           RequestStatus status) {
  if (client_version < 4 && status == RequestStatus::kRejectedUnknownTier)
    status = RequestStatus::kRejectedUnknownModel;  // tier statuses are v4
  if (client_version < 2 && status == RequestStatus::kRejectedUnknownModel)
    status = RequestStatus::kRejectedInvalid;  // v1-era status range
  net::WireResponse wire;
  wire.correlation_id = correlation_id;
  wire.response.status = status;
  std::vector<uint8_t> out;
  net::encode_serve_response(wire, out, client_version);
  send_to_client(fd, out);
}

bool ShardProxy::handle_serve(int fd, const net::FrameHeader& hdr,
                              const uint8_t* frame, size_t frame_len) {
  const TimePoint received_at = Clock::now();
  const auto rel_now = [&received_at] {
    return std::chrono::duration_cast<Micros>(Clock::now() - received_at)
        .count();
  };
  // lint-wire: same complete-frame guarantee as handle_frame.
  const uint8_t* payload = frame + net::kHeaderSize;
  uint64_t correlation = 0;
  uint64_t trace_id = 0;
  uint8_t tier = 0;
  std::string model;
  if (!net::peek_serve_request(payload, hdr.payload_len, hdr.version,
                               &correlation, &trace_id, &tier, &model)) {
    // Malformed frames are stopped HERE: forwarding them would make the
    // backend condemn a pooled connection per hostile client frame.
    ++protocol_errors_;
    return false;
  }
  const std::string& resolved = model.empty() ? default_model_ : model;
  // Route key for the consistent-hash policy: the trace id when the
  // client sent one, else the correlation id — both stable for the
  // request's whole failover walk.
  const uint64_t route_key =
      placement_mix(trace_id != 0 ? trace_id : correlation);

  // A frame that already names its model (v3/v4) is forwarded verbatim
  // (no copy, token bytes never re-decoded); empty-model and pre-v3
  // frames are rewritten — a byte splice to a v4 frame — to carry the
  // resolved model, the request's tier, and a trace id: the client's
  // when it sent one, a freshly minted one otherwise, so the proxy hop
  // of every request is traceable even for v1/v2 clients.
  std::vector<uint8_t> rewritten;
  const uint8_t* send_data = frame;
  size_t send_len = frame_len;
  bool prepared = false;

  int attempts = 0;
  bool saw_unknown_tier = false;
  // Each failed attempt is journaled so a failover reconstructs from
  // `admin --events` alone: which backend, which attempt, which trace.
  const auto journal_retry = [&](const Backend& backend) {
    FlightRecorder::instance().record(
        FlightEventType::kFailoverRetry, backend.address, trace_id, tier,
        static_cast<uint16_t>(std::min(attempts, 0xFFFF)));
  };
  std::vector<int64_t> forward_times;  // rel. to receipt, one per attempt

  // Epoch-retry loop: the request resolves its replicas against ONE
  // routing snapshot; if every candidate fails AND the placement epoch
  // moved meanwhile (a migration or removal mid-request), it re-resolves
  // on the current epoch instead of erroring — the zero-drop guarantee
  // for requests caught straddling a flip.
  for (int round = 0; round < kMaxEpochRounds; ++round) {
    const std::shared_ptr<const RoutingState> routing = this->routing();
    const uint64_t epoch = routing->placement->epoch;
    const std::vector<std::shared_ptr<Backend>> replicas =
        candidates_for(*routing, resolved, tier, route_key);
    if (replicas.empty()) {
      // Distinguish "no such model" from "model exists, but nothing in
      // the placement table can carry that precision tier".
      const bool known_model = routing->placement->has_model(resolved);
      if (known_model)
        ++unknown_tier_;
      else
        ++unknown_model_;
      synthesize_serve_response(fd, hdr.version, correlation,
                                known_model
                                    ? RequestStatus::kRejectedUnknownTier
                                    : RequestStatus::kRejectedUnknownModel);
      return true;
    }
    if (!prepared) {
      prepared = true;
      if (model.empty() || hdr.version < 3) {
        if (trace_id == 0) trace_id = mint_trace_id();
        if (!net::rewrite_serve_request_model(frame, frame_len, resolved,
                                              trace_id, &rewritten, tier)) {
          ++protocol_errors_;
          return false;
        }
        send_data = rewritten.data();
        send_len = rewritten.size();
      }
    }

    bool reresolve = false;
    for (const std::shared_ptr<Backend>& backend : replicas) {
      if (stopping_) break;  // shutdown: fail terminal, don't keep trying
      forward_times.push_back(rel_now());
      net::FrameHeader rhdr;
      std::vector<uint8_t> rpayload;
      if (!forward_serve_once(*backend, send_data, send_len, correlation,
                              &rhdr, rpayload)) {
        note_outcome(*backend, false, /*health_probe=*/false);
        ++attempts;
        journal_retry(*backend);
        continue;
      }
      uint64_t rcorr = 0;
      RequestStatus status{};
      net::peek_serve_response(rpayload.data(), rpayload.size(), &rcorr,
                               &status);  // validated in forward_serve_once
      if (status == RequestStatus::kRejectedUnknownModel &&
          placement_.epoch() != epoch && round + 1 < kMaxEpochRounds) {
        // The backend answered from a placement generation the proxy
        // has already left (it unloaded the engine mid-migration).
        // Its transport is fine; re-resolve instead of relaying a
        // rejection the CURRENT placement would not produce.
        note_outcome(*backend, true, /*health_probe=*/false);
        ++attempts;
        journal_retry(*backend);
        reresolve = true;
        break;
      }
      if (status == RequestStatus::kRejectedUnknownTier) {
        // The replica is healthy — it just does not carry this tier
        // (replicas may pin different tier subsets). Try the next
        // candidate; remember the verdict so exhaustion reports
        // unknown-tier rather than engine failure.
        note_outcome(*backend, true, /*health_probe=*/false);
        saw_unknown_tier = true;
        ++attempts;
        journal_retry(*backend);
        continue;
      }
      if (status_is_retryable(status)) {
        note_outcome(*backend, false, /*health_probe=*/false);
        ++attempts;
        journal_retry(*backend);
        continue;
      }
      // A v3 response must carry a well-formed trailing trace section
      // (possibly empty); one that does not is a protocol violation and
      // fails over like any other bad response.
      size_t trace_start = rpayload.size();
      uint64_t backend_trace = 0;
      std::vector<TraceEvent> backend_stages;
      uint8_t backend_tier = 0;
      if (rhdr.version >= 3 &&
          !net::split_serve_response_trace(rpayload.data(), rpayload.size(),
                                           rhdr.version, &trace_start,
                                           &backend_trace, &backend_stages,
                                           &backend_tier)) {
        note_outcome(*backend, false, /*health_probe=*/false);
        ++attempts;
        continue;
      }
      note_outcome(*backend, true, /*health_probe=*/false);

      // Relay. v3 tracing clients get the backend's stages spliced into
      // this hop's timeline (t = 0 at frame receipt): receipt, every
      // forward attempt — retries included, which is how a failover
      // shows up in one trace — then the backend stages shifted to the
      // successful forward's instant, then the response relay. Pre-v3
      // clients get the trace section stripped byte-exactly; v1 clients
      // additionally get a v1-era status byte.
      if (rhdr.version >= 3) {
        if (hdr.version >= 3 && trace_id != 0) {
          std::vector<TraceEvent> merged;
          merged.push_back({TraceStage::kProxyReceived, 0});
          for (size_t i = 0; i < forward_times.size(); ++i)
            merged.push_back({i == 0 ? TraceStage::kProxyForward
                                     : TraceStage::kProxyRetry,
                              forward_times[i]});
          const int64_t shift = forward_times.back();
          for (TraceEvent ev : backend_stages) {
            ev.t_us += shift;
            merged.push_back(ev);
          }
          merged.push_back({TraceStage::kProxyResponse, rel_now()});
          rpayload.resize(trace_start);
          net::encode_trace_section(trace_id, merged, rpayload);
          // Re-append the resolved-tier byte the trace rebuild truncated
          // (the v4 layout places it after the trace section).
          if (rhdr.version >= 4 && hdr.version >= 4)
            rpayload.push_back(backend_tier);
        } else if (hdr.version < 3) {
          rpayload.resize(trace_start);
        }
      }
      if (hdr.version < 2 &&
          status == RequestStatus::kRejectedUnknownModel &&
          rpayload.size() > 8)
        // lint-wire: fixed-offset status-byte splice, size-guarded above.
        rpayload[8] = static_cast<uint8_t>(RequestStatus::kRejectedInvalid);
      std::vector<uint8_t> out;
      net::FrameHeader relay = rhdr;
      relay.version = hdr.version;
      relay.payload_len = static_cast<uint32_t>(rpayload.size());
      net::encode_frame_header(relay, out);
      out.insert(out.end(), rpayload.begin(), rpayload.end());
      ++served_;
      if (attempts > 0) ++failovers_;
      return send_to_client(fd, out);
    }
    if (stopping_) break;
    if (reresolve ||
        (round + 1 < kMaxEpochRounds && placement_.epoch() != epoch)) {
      ++epoch_retries_;
      // The new epoch re-judges tier coverage from scratch.
      saw_unknown_tier = false;
      continue;
    }
    break;
  }

  // Every replica failed; the client still gets a terminal response
  // (never a hang, never a dropped connection). If at least one healthy
  // replica answered "no such tier", that — not engine failure — is the
  // fleet's verdict.
  if (saw_unknown_tier) {
    ++unknown_tier_;
    synthesize_serve_response(fd, hdr.version, correlation,
                              RequestStatus::kRejectedUnknownTier);
    return true;
  }
  ++exhausted_;
  synthesize_serve_response(fd, hdr.version, correlation,
                            RequestStatus::kEngineError);
  return true;
}

bool ShardProxy::handle_info(int fd, const net::FrameHeader& hdr,
                             const uint8_t* payload, size_t len) {
  std::string model;
  uint8_t tier = 0;
  if (!net::decode_info_request(payload, len, hdr.version, &model, &tier)) {
    ++protocol_errors_;
    return false;
  }
  const std::string& resolved = model.empty() ? default_model_ : model;
  const auto routing = this->routing();
  for (const auto& backend : candidates_for(*routing, resolved, tier, 0)) {
    std::optional<nn::BertConfig> config;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          config = conn->query_info(resolved, tier);
          // In-band "no such model/tier" leaves the transport healthy;
          // anything else condemned the connection already.
          return config.has_value() ||
                 (conn->connected() &&
                  conn->error_kind() == net::ClientError::kNone);
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (config) {
      net::WireInfo info;
      info.model = resolved;
      info.tier = tier;
      info.config = *config;
      std::vector<uint8_t> out;
      net::encode_info_response(info, out, hdr.version);
      return send_to_client(fd, out);
    }
  }
  if (hdr.version >= 2) {
    std::string msg = "no reachable backend serves model '" + resolved + "'";
    if (tier != 0) msg += " at tier int" + std::to_string(tier);
    std::vector<uint8_t> out;
    net::encode_admin_response(false, msg, out);
    return send_to_client(fd, out);
  }
  // v1 cannot carry an in-band failure on the info path — same dead end
  // as a router with no default lane: close.
  return false;
}

bool ShardProxy::handle_list(int fd, const net::FrameHeader& hdr,
                             size_t payload_len) {
  if (payload_len != 0) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  // Union of every reachable backend's (model, tier) rows, against ONE
  // routing snapshot: a backend removed mid-fan-out simply fails its
  // checkout (closed pool) and is skipped like an unreachable one. v4
  // clients see the tier column; pre-v4 clients see each name once.
  const auto routing = this->routing();
  std::set<std::pair<std::string, uint8_t>> entries;
  bool any_backend = false;
  for (const auto& backend : routing->order) {
    if (backend_state(*backend) == BackendState::kDown) continue;
    std::optional<std::vector<net::WireModelEntry>> list;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          list = conn->list_models_tiered();
          return list.has_value();
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (!list) continue;
    any_backend = true;
    for (const net::WireModelEntry& e : *list)
      entries.insert({e.name, e.tier});
  }
  std::vector<uint8_t> out;
  if (!any_backend) {
    net::encode_admin_response(false, "no backend reachable", out);
  } else {
    std::vector<net::WireModelEntry> rows;
    rows.reserve(entries.size());
    for (const auto& [name, entry_tier] : entries) {
      if (hdr.version < 4) {
        // Tiers of one model are adjacent in the ordered set, so a
        // names-only view is a single dedupe pass.
        if (!rows.empty() && rows.back().name == name) continue;
        rows.push_back({name, 0});
      } else {
        rows.push_back({name, entry_tier});
      }
    }
    net::encode_model_list(rows, out, hdr.version);
  }
  return send_to_client(fd, out);
}

std::vector<ServeStats::Report> ShardProxy::collect_reports(
    const RoutingState& routing, const std::string& model, uint8_t tier) {
  std::vector<ServeStats::Report> reports;
  for (const auto& backend : candidates_for(routing, model, tier, 0)) {
    std::optional<net::WireStats> stats;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          stats = conn->query_stats(model, tier);
          return stats.has_value() ||
                 (conn->connected() &&
                  conn->error_kind() == net::ClientError::kNone);
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (stats) reports.push_back(std::move(stats->report));
  }
  return reports;
}

std::vector<ShardProxy::TierStats> ShardProxy::aggregate_stats() {
  const auto routing = this->routing();
  std::vector<TierStats> out;
  for (const auto& [name, replicas] : routing->placement->by_model) {
    // One fleet row per (model, declared tier). Generic declarations
    // aggregate under tier 0 — the default lane's bit-width is the
    // backend's business, not the placement table's.
    std::set<int> tiers;
    for (const PlacementCell& cell : replicas) tiers.insert(cell.tier);
    for (const int tier : tiers) {
      std::vector<ServeStats::Report> reports =
          collect_reports(*routing, name, static_cast<uint8_t>(tier));
      if (!reports.empty())
        out.push_back({name, tier, ServeStats::aggregate(reports)});
    }
  }
  return out;
}

bool ShardProxy::handle_dump_events(int fd, const net::FrameHeader& hdr,
                                    const uint8_t* payload, size_t len) {
  uint64_t since_ns = 0;
  uint32_t max_events = 0;
  if (hdr.version < 2 ||
      !net::decode_dump_events(payload, len, &since_ns, &max_events)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  // The fleet journal: this proxy's own events (health transitions,
  // failover retries, placement changes) merged with every reachable
  // backend's dump. All journals stamp CLOCK_MONOTONIC of their own
  // host — on one machine (the test and dev topology) the merged order
  // is the true order; across machines rows still group correctly per
  // process.
  const auto routing = this->routing();
  std::vector<net::WireEvent> merged =
      wire_events(FlightRecorder::instance(), since_ns, max_events);
  for (const auto& backend : routing->order) {
    if (backend_state(*backend) == BackendState::kDown) continue;
    std::optional<std::vector<net::WireEvent>> events;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          events = conn->dump_events(since_ns, max_events);
          return events.has_value();
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (events)
      merged.insert(merged.end(), events->begin(), events->end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::WireEvent& a, const net::WireEvent& b) {
                     return a.t_ns < b.t_ns;
                   });
  const size_t cap = max_events == 0
                         ? static_cast<size_t>(net::kMaxDumpEvents)
                         : std::min<size_t>(max_events, net::kMaxDumpEvents);
  if (merged.size() > cap)
    merged.erase(merged.begin(),
                 merged.begin() + static_cast<ptrdiff_t>(merged.size() - cap));
  std::vector<uint8_t> out;
  net::encode_event_dump(merged, out, hdr.version);
  return send_to_client(fd, out);
}

bool ShardProxy::handle_stats(int fd, const net::FrameHeader& hdr,
                              const uint8_t* payload, size_t len) {
  std::string name;
  uint8_t tier = 0;
  if (!net::decode_stats_request(payload, len, hdr.version, &name, &tier)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  const std::string& resolved = name.empty() ? default_model_ : name;
  const auto routing = this->routing();
  std::vector<ServeStats::Report> reports =
      collect_reports(*routing, resolved, tier);
  std::vector<uint8_t> out;
  if (reports.empty()) {
    std::string what = "'" + resolved + "'";
    if (tier != 0) what += " at tier int" + std::to_string(tier);
    net::encode_admin_response(
        false,
        !routing->placement->has_model(resolved)
            ? "no model named '" + resolved + "' is in the placement table"
            : "no reachable backend reports stats for " + what,
        out);
  } else {
    // The pooled clients speak v4, so each report arrives with its
    // lane's quantile sketch and the aggregate's quantiles are EXACT
    // (merge of sketches == sketch of the pooled samples). Encoded at
    // the client's version: pre-v3 clients get the sketchless prefix.
    net::WireStats agg;
    agg.model = resolved;
    agg.tier = tier;
    agg.report = ServeStats::aggregate(reports);
    net::encode_stats_response(agg, out, hdr.version);
  }
  return send_to_client(fd, out);
}

// ---------------------------------------------------------------------------
// Proxy-admin frames (protocol v5)
// ---------------------------------------------------------------------------

bool ShardProxy::handle_add_backend(int fd, const net::FrameHeader& hdr,
                                    const uint8_t* payload, size_t len) {
  (void)hdr;
  std::string host;
  uint16_t port = 0;
  std::vector<net::WireModelEntry> models;
  if (!net::decode_add_backend(payload, len, &host, &port, &models)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  std::vector<std::string> specs;
  specs.reserve(models.size());
  for (const net::WireModelEntry& e : models)
    specs.push_back(e.tier == 0 ? e.name
                                : e.name + "@" + std::to_string(e.tier));
  std::string message;
  const bool ok = admin_add_backend(host, port, specs, &message);
  if (ok)
    message = "backend " + host + ":" + std::to_string(port) +
              " added at epoch " + std::to_string(placement_epoch());
  std::vector<uint8_t> out;
  net::encode_admin_response(ok, message, out);
  return send_to_client(fd, out);
}

bool ShardProxy::handle_remove_backend(int fd, const net::FrameHeader& hdr,
                                       const uint8_t* payload, size_t len) {
  (void)hdr;
  std::string address;
  if (!net::decode_remove_backend(payload, len, &address)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  std::string message;
  const bool ok = admin_remove_backend(address, &message);
  if (ok)
    message = "backend " + address + " drained and removed at epoch " +
              std::to_string(placement_epoch());
  std::vector<uint8_t> out;
  net::encode_admin_response(ok, message, out);
  return send_to_client(fd, out);
}

bool ShardProxy::handle_move_model(int fd, const net::FrameHeader& hdr,
                                   const uint8_t* payload, size_t len) {
  (void)hdr;
  std::string model, from, to, path;
  uint8_t tier = 0;
  if (!net::decode_move_model(payload, len, &model, &tier, &from, &to,
                              &path)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  std::string message;
  const bool ok = admin_move_model(model, tier, from, to, path, &message);
  if (ok) {
    std::string done = "model '" + model + "' moved from " + from + " to " +
                       to + " at epoch " + std::to_string(placement_epoch());
    if (!message.empty()) done += " (" + message + ")";
    message = std::move(done);
  }
  std::vector<uint8_t> out;
  net::encode_admin_response(ok, message, out);
  return send_to_client(fd, out);
}

bool ShardProxy::handle_get_placement(int fd, const net::FrameHeader& hdr,
                                      size_t len) {
  if (!net::decode_get_placement(nullptr, len)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  std::vector<uint8_t> out;
  net::encode_placement(placement_view(), out, hdr.version);
  return send_to_client(fd, out);
}

}  // namespace fqbert::serve::shard
