#include "serve/shard/shard_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>
#include <set>
#include <utility>

#include "serve/debug_text.h"
#include "serve/flight_recorder.h"

namespace fqbert::serve::shard {

namespace {

/// Poll tick for the accept and per-connection loops: how quickly
/// stop() is observed when a socket is silent.
constexpr int kLoopTickMs = 100;

/// Retryable serve outcomes: the backend answered, but with a status
/// that means "this replica cannot serve right now" (draining shutdown,
/// engine failure) rather than a verdict about the request itself.
/// Inference is idempotent, so the next replica gets a clean try.
bool status_is_retryable(RequestStatus s) {
  return s == RequestStatus::kShutdown || s == RequestStatus::kEngineError;
}

/// Split "name@int4" / "name@4" into (name, tier); a bare name reads
/// tier 0 (the backend's default tier). False on a malformed suffix.
bool parse_model_spec(const std::string& spec, std::string* name,
                      int* tier) {
  const size_t at = spec.rfind('@');
  if (at == std::string::npos) {
    *name = spec;
    *tier = 0;
    return true;
  }
  *name = spec.substr(0, at);
  std::string t = spec.substr(at + 1);
  if (t.rfind("int", 0) == 0) t = t.substr(3);
  if (t.size() != 1 || t[0] < '2' || t[0] > '8') return false;
  *tier = t[0] - '0';
  return !name->empty();
}

}  // namespace

const char* backend_state_name(BackendState s) {
  switch (s) {
    case BackendState::kHealthy: return "healthy";
    case BackendState::kSuspect: return "suspect";
    case BackendState::kDown: return "down";
  }
  return "?";
}

ShardProxy::ShardProxy(const ShardProxyConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_connections < 1) cfg_.max_connections = 1;
  if (cfg_.suspect_after < 1) cfg_.suspect_after = 1;
  if (cfg_.down_after < cfg_.suspect_after) cfg_.down_after = cfg_.suspect_after;
  if (cfg_.recover_after < 1) cfg_.recover_after = 1;
}

ShardProxy::~ShardProxy() { stop(); }

bool ShardProxy::add_backend(const std::string& host, uint16_t port,
                             const std::vector<std::string>& models,
                             std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (running_) return fail("cannot add a backend to a running proxy");
  if (models.empty())
    return fail("backend " + host + ":" + std::to_string(port) +
                " declares no models");
  for (const auto& b : backends_)
    if (b->host == host && b->port == port)
      return fail("backend " + b->address + " declared twice");
  std::set<std::pair<std::string, int>> seen;
  std::vector<std::pair<std::string, int>> parsed;
  parsed.reserve(models.size());
  for (const std::string& spec : models) {
    std::string name;
    int tier = 0;
    if (spec.empty()) return fail("empty model name in backend declaration");
    if (!parse_model_spec(spec, &name, &tier))
      return fail("malformed tier suffix in '" + spec +
                  "' (expected name, name@intN or name@N, N in [2, 8])");
    if (name.size() > net::kMaxNameLen)
      return fail("model name '" + name + "' exceeds the wire limit");
    if (!seen.insert({name, tier}).second)
      return fail("model '" + spec + "' repeated within one backend");
    parsed.emplace_back(std::move(name), tier);
  }

  net::ClientPoolConfig pool_cfg;
  pool_cfg.capacity = cfg_.pool_capacity;
  pool_cfg.connect_timeout = cfg_.connect_timeout;
  pool_cfg.recv_timeout = cfg_.call_timeout;
  auto backend = std::make_unique<Backend>(host, port, models, pool_cfg);
  {
    // Pre-start, single-threaded — locked only to satisfy the
    // thread-safety analysis, which cannot see the publication order.
    MutexLock lock(backend->health_mu);
    backend->health.set_timeouts(cfg_.health_timeout, cfg_.health_timeout);
  }
  for (const auto& [name, tier] : parsed)
    placement_[name].push_back({backend.get(), tier});
  if (default_model_.empty()) default_model_ = parsed.front().first;
  backends_.push_back(std::move(backend));
  return true;
}

bool ShardProxy::start() {
  if (running_) return true;
  if (backends_.empty()) {
    std::fprintf(stderr, "shard proxy: no backends declared\n");
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::perror("shard proxy: socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "shard proxy: bad bind address %s\n",
                 cfg_.bind_address.c_str());
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, cfg_.listen_backlog) != 0) {
    std::perror("shard proxy: bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  for (auto& b : backends_) b->pool.reopen();  // undo a prior stop()
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
  return true;
}

void ShardProxy::stop() {
  if (!running_) return;
  {
    // Set under the cv mutex: notifying between the health loop's
    // predicate check and its sleep would otherwise be a lost wakeup
    // (stop() would stall a full health_interval).
    MutexLock lock(health_cv_mu_);
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Abort in-flight forwards FIRST: a connection thread blocked on a
  // backend recv would otherwise hold stop() for up to call_timeout.
  for (auto& b : backends_) b->pool.shutdown_all();

  std::map<uint64_t, std::thread> threads;
  {
    MutexLock lock(conns_mu_);
    // Wake per-connection threads blocked in poll/recv on their client
    // socket; each closes its own fd on exit.
    for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& [id, t] : threads)
    if (t.joinable()) t.join();

  for (auto& b : backends_) {
    b->pool.clear();
    MutexLock lock(b->health_mu);
    b->health.close();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

std::vector<std::string> ShardProxy::model_names() const {
  std::vector<std::string> names;
  names.reserve(placement_.size());
  for (const auto& [name, replicas] : placement_) names.push_back(name);
  return names;
}

std::vector<ShardProxy::BackendStatus> ShardProxy::backend_status() const {
  std::vector<BackendStatus> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) {
    BackendStatus s;
    s.address = b->address;
    s.models = b->models;
    MutexLock lock(b->mu);
    s.state = b->state;
    s.health_ok = b->health_ok;
    s.health_failed = b->health_failed;
    s.forwarded = b->forwarded;
    s.forward_failures = b->forward_failures;
    s.recoveries = b->recoveries;
    out.push_back(std::move(s));
  }
  return out;
}

ShardProxy::Counters ShardProxy::counters() const {
  Counters c;
  c.accepted = accepted_;
  c.served = served_;
  c.failovers = failovers_;
  c.exhausted = exhausted_;
  c.unknown_model = unknown_model_;
  c.unknown_tier = unknown_tier_;
  c.protocol_errors = protocol_errors_;
  c.admin_frames = admin_frames_;
  c.health_transitions = health_transitions_;
  return c;
}

// ---------------------------------------------------------------------------
// Health checking and the backend state machine
// ---------------------------------------------------------------------------

void ShardProxy::note_outcome(Backend& backend, bool success,
                              bool health_probe) {
  // Journal every state-machine edge (taken below, under backend.mu)
  // with both endpoints packed into one detail byte: (from << 4) | to.
  const auto journal_edge = [&backend](BackendState from, BackendState to) {
    FlightRecorder::instance().record(
        FlightEventType::kHealthTransition, backend.address, 0, 0,
        static_cast<uint16_t>((static_cast<uint16_t>(from) << 4) |
                              static_cast<uint16_t>(to)));
  };
  MutexLock lock(backend.mu);
  if (success) {
    if (health_probe)
      ++backend.health_ok;
    else
      ++backend.forwarded;
    backend.fail_streak = 0;
    ++backend.ok_streak;
    if (backend.state != BackendState::kHealthy &&
        backend.ok_streak >= cfg_.recover_after) {
      journal_edge(backend.state, BackendState::kHealthy);
      backend.state = BackendState::kHealthy;
      ++backend.recoveries;
      ++health_transitions_;
    }
  } else {
    if (health_probe)
      ++backend.health_failed;
    else
      ++backend.forward_failures;
    backend.ok_streak = 0;
    ++backend.fail_streak;
    if (backend.state == BackendState::kHealthy &&
        backend.fail_streak >= cfg_.suspect_after) {
      journal_edge(backend.state, BackendState::kSuspect);
      backend.state = BackendState::kSuspect;
      ++health_transitions_;
    }
    if (backend.state != BackendState::kDown &&
        backend.fail_streak >= cfg_.down_after) {
      journal_edge(backend.state, BackendState::kDown);
      backend.state = BackendState::kDown;
      ++health_transitions_;
    }
  }
}

BackendState ShardProxy::backend_state(const Backend& backend) const {
  MutexLock lock(backend.mu);
  return backend.state;
}

void ShardProxy::run_health_round() {
  // Probe concurrently: serially, one blackholed backend would burn
  // its whole health_timeout before the NEXT backend is even looked
  // at, coupling every backend's detection latency to the slowest.
  std::vector<std::thread> probes;
  probes.reserve(backends_.size());
  for (const auto& b : backends_) {
    probes.emplace_back([this, backend = b.get()] {
      bool ok = false;
      {
        MutexLock lock(backend->health_mu);
        if (!backend->health.connected())
          backend->health.connect(backend->host, backend->port);
        if (backend->health.connected()) {
          // The ping asks for the backend's default model shape. A
          // backend with no default lane answers in-band (error_kind
          // stays kNone, connection stays aligned) — its TRANSPORT is
          // healthy, which is all the proxy's state machine judges.
          const auto info = backend->health.query_info("");
          ok = info.has_value() ||
               (backend->health.connected() &&
                backend->health.error_kind() == net::ClientError::kNone);
        }
      }
      note_outcome(*backend, ok, /*health_probe=*/true);
    });
  }
  for (std::thread& t : probes) t.join();
}

void ShardProxy::check_backends_now() { run_health_round(); }

void ShardProxy::health_loop() {
  for (;;) {
    {
      MutexLock lock(health_cv_mu_);
      if (stopping_) return;
      // The predicate reads only the atomic stopping_ (no guarded
      // state), so the lambda is safe under the thread-safety analysis.
      health_cv_.wait_for(lock.native(), cfg_.health_interval,
                          [this] { return stopping_.load(); });
      if (stopping_) return;
    }
    run_health_round();
  }
}

// ---------------------------------------------------------------------------
// Front-side socket plumbing
// ---------------------------------------------------------------------------

void ShardProxy::accept_loop() {
  while (!stopping_) {
    // Reap finished connection threads (they cannot join themselves).
    {
      MutexLock lock(conns_mu_);
      for (const uint64_t id : finished_conns_) {
        auto it = conn_threads_.find(id);
        if (it != conn_threads_.end()) {
          it->second.join();
          conn_threads_.erase(it);
        }
      }
      finished_conns_.clear();
    }

    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kLoopTickMs);
    if (ready <= 0) continue;
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    {
      MutexLock lock(conns_mu_);
      if (conn_fds_.size() >= cfg_.max_connections) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const uint64_t id = next_conn_id_++;
      conn_fds_[id] = fd;
      conn_threads_[id] = std::thread([this, id, fd] {
        serve_connection(id, fd);
        // Erase the map entry and close the fd under ONE lock hold:
        // stop() iterates conn_fds_ to shutdown() live sockets, and a
        // close outside the lock could free the fd number for reuse
        // while stop() still holds it.
        MutexLock exit_lock(conns_mu_);
        conn_fds_.erase(id);
        ::close(fd);
        finished_conns_.push_back(id);
      });
      ++accepted_;
    }
  }
}

void ShardProxy::serve_connection(uint64_t conn_id, int fd) {
  (void)conn_id;
  std::vector<uint8_t> in;
  std::vector<uint8_t> buf(64 * 1024);
  bool ok = true;
  while (ok && !stopping_) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kLoopTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    in.insert(in.end(), buf.data(), buf.data() + n);

    size_t pos = 0;
    while (ok) {
      net::FrameHeader hdr;
      const net::DecodeStatus st =
          net::decode_header(in.data() + pos, in.size() - pos, &hdr);
      if (st == net::DecodeStatus::kNeedMore) break;
      if (st == net::DecodeStatus::kError) {
        ++protocol_errors_;
        ok = false;
        break;
      }
      const size_t frame_len = net::kHeaderSize + hdr.payload_len;
      if (in.size() - pos < frame_len) break;
      ok = handle_frame(fd, hdr, in.data() + pos, frame_len);
      if (ok) pos += frame_len;
    }
    if (pos > 0) in.erase(in.begin(), in.begin() + pos);
  }
  // The fd is closed by the spawning lambda (under conns_mu_, together
  // with the conn_fds_ erase) — not here, where it would race stop().
}

bool ShardProxy::send_to_client(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frame dispatch
// ---------------------------------------------------------------------------

bool ShardProxy::handle_frame(int fd, const net::FrameHeader& hdr,
                              const uint8_t* frame, size_t frame_len) {
  // lint-wire: complete frame — decode_header validated payload_len
  const uint8_t* payload = frame + net::kHeaderSize;
  const size_t len = hdr.payload_len;
  switch (hdr.type) {
    case net::FrameType::kServeRequest:
      return handle_serve(fd, hdr, frame, frame_len);
    case net::FrameType::kInfoRequest:
      return handle_info(fd, hdr, payload, len);
    case net::FrameType::kListModels:
      return handle_list(fd, hdr, len);
    case net::FrameType::kStatsRequest:
      return handle_stats(fd, hdr, payload, len);
    case net::FrameType::kLoadModel:
    case net::FrameType::kUnloadModel: {
      // Placement is explicit; mutating a backend's model set behind
      // the table's back would desynchronize routing. Refused in-band.
      std::string a, b;
      uint8_t tier = 0;
      const bool parsed =
          hdr.type == net::FrameType::kLoadModel
              ? net::decode_load_model(payload, len, hdr.version, &a, &b,
                                       &tier)
              : net::decode_unload_model(payload, len, hdr.version, &a,
                                         &tier);
      if (!parsed) {
        ++protocol_errors_;
        return false;
      }
      ++admin_frames_;
      std::vector<uint8_t> out;
      net::encode_admin_response(
          false,
          "LOAD/UNLOAD is not routed through the shard proxy; target the "
          "backend directly and keep the placement table in sync",
          out);
      return send_to_client(fd, out);
    }
    case net::FrameType::kDumpEvents:
      return handle_dump_events(fd, hdr, payload, len);
    case net::FrameType::kInfoResponse:
    case net::FrameType::kServeResponse:
    case net::FrameType::kAdminResponse:
    case net::FrameType::kModelList:
    case net::FrameType::kStatsResponse:
    case net::FrameType::kEventDump:
      ++protocol_errors_;  // proxy-bound streams must not carry responses
      return false;
  }
  ++protocol_errors_;
  return false;
}

std::vector<ShardProxy::Backend*> ShardProxy::candidates_for(
    const std::string& model, uint8_t tier) const {
  auto it = placement_.find(model);
  if (it == placement_.end()) return {};
  // Preference groups. A tiered request tries entries pinned to that
  // exact tier first, then generic entries (an undeclared replica may
  // still carry the tier, and answers kRejectedUnknownTier if not);
  // entries pinned to a DIFFERENT tier are never candidates. A
  // default-tier request prefers generic entries but falls back to
  // pinned ones — they serve the model too, at whatever their default
  // lane runs. Within each group, non-down before down; a backend
  // appears at most once even if several of its entries match.
  std::vector<Backend*> order;
  order.reserve(it->second.size());
  std::set<Backend*> taken;
  const auto add_group = [&](const std::function<bool(int)>& match) {
    for (const bool want_up : {true, false})
      for (const Placed& p : it->second) {
        if (!match(p.tier)) continue;
        const bool up = backend_state(*p.backend) != BackendState::kDown;
        if (up != want_up) continue;
        if (taken.insert(p.backend).second) order.push_back(p.backend);
      }
  };
  if (tier == 0) {
    add_group([](int t) { return t == 0; });
    add_group([](int t) { return t != 0; });
  } else {
    add_group([&](int t) { return t == tier; });
    add_group([](int t) { return t == 0; });
  }
  return order;
}

bool ShardProxy::forward_serve_once(Backend& backend, const uint8_t* frame,
                                    size_t frame_len,
                                    uint64_t expect_correlation,
                                    net::FrameHeader* rhdr,
                                    std::vector<uint8_t>& rpayload) {
  return with_backend_conn(backend, [&](net::ClientPool::Handle& conn) {
    if (!conn->send_raw(frame, frame_len)) return false;
    if (!conn->recv_raw(rhdr, rpayload)) return false;
    if (rhdr->type != net::FrameType::kServeResponse) {
      conn.discard();  // backend speaking out of turn: do not reuse
      return false;
    }
    uint64_t corr = 0;
    RequestStatus status{};
    if (!net::peek_serve_response(rpayload.data(), rpayload.size(), &corr,
                                  &status) ||
        corr != expect_correlation) {
      conn.discard();
      return false;
    }
    return true;
  });
}

void ShardProxy::synthesize_serve_response(int fd, uint8_t client_version,
                                           uint64_t correlation_id,
                                           RequestStatus status) {
  if (client_version < 4 && status == RequestStatus::kRejectedUnknownTier)
    status = RequestStatus::kRejectedUnknownModel;  // tier statuses are v4
  if (client_version < 2 && status == RequestStatus::kRejectedUnknownModel)
    status = RequestStatus::kRejectedInvalid;  // v1-era status range
  net::WireResponse wire;
  wire.correlation_id = correlation_id;
  wire.response.status = status;
  std::vector<uint8_t> out;
  net::encode_serve_response(wire, out, client_version);
  send_to_client(fd, out);
}

bool ShardProxy::handle_serve(int fd, const net::FrameHeader& hdr,
                              const uint8_t* frame, size_t frame_len) {
  const TimePoint received_at = Clock::now();
  const auto rel_now = [&received_at] {
    return std::chrono::duration_cast<Micros>(Clock::now() - received_at)
        .count();
  };
  // lint-wire: same complete-frame guarantee as handle_frame.
  const uint8_t* payload = frame + net::kHeaderSize;
  uint64_t correlation = 0;
  uint64_t trace_id = 0;
  uint8_t tier = 0;
  std::string model;
  if (!net::peek_serve_request(payload, hdr.payload_len, hdr.version,
                               &correlation, &trace_id, &tier, &model)) {
    // Malformed frames are stopped HERE: forwarding them would make the
    // backend condemn a pooled connection per hostile client frame.
    ++protocol_errors_;
    return false;
  }
  const std::string& resolved = model.empty() ? default_model_ : model;

  std::vector<Backend*> replicas = candidates_for(resolved, tier);
  if (replicas.empty()) {
    // Distinguish "no such model" from "model exists, but nothing in
    // the placement table can carry that precision tier".
    const bool known_model = placement_.count(resolved) != 0;
    if (known_model)
      ++unknown_tier_;
    else
      ++unknown_model_;
    synthesize_serve_response(fd, hdr.version, correlation,
                              known_model
                                  ? RequestStatus::kRejectedUnknownTier
                                  : RequestStatus::kRejectedUnknownModel);
    return true;
  }

  // A frame that already names its model (v3/v4) is forwarded verbatim
  // (no copy, token bytes never re-decoded); empty-model and pre-v3
  // frames are rewritten — a byte splice to a v4 frame — to carry the
  // resolved model, the request's tier, and a trace id: the client's
  // when it sent one, a freshly minted one otherwise, so the proxy hop
  // of every request is traceable even for v1/v2 clients.
  std::vector<uint8_t> rewritten;
  const uint8_t* send_data = frame;
  size_t send_len = frame_len;
  if (model.empty() || hdr.version < 3) {
    if (trace_id == 0) trace_id = mint_trace_id();
    if (!net::rewrite_serve_request_model(frame, frame_len, resolved,
                                          trace_id, &rewritten, tier)) {
      ++protocol_errors_;
      return false;
    }
    send_data = rewritten.data();
    send_len = rewritten.size();
  }

  int attempts = 0;
  bool saw_unknown_tier = false;
  // Each failed attempt is journaled so a failover reconstructs from
  // `admin --events` alone: which backend, which attempt, which trace.
  const auto journal_retry = [&](const Backend& backend) {
    FlightRecorder::instance().record(
        FlightEventType::kFailoverRetry, backend.address, trace_id, tier,
        static_cast<uint16_t>(std::min(attempts, 0xFFFF)));
  };
  std::vector<int64_t> forward_times;  // rel. to receipt, one per attempt
  for (Backend* backend : replicas) {
    if (stopping_) break;  // shutdown: fail terminal, don't keep trying
    forward_times.push_back(rel_now());
    net::FrameHeader rhdr;
    std::vector<uint8_t> rpayload;
    if (!forward_serve_once(*backend, send_data, send_len, correlation,
                            &rhdr, rpayload)) {
      note_outcome(*backend, false, /*health_probe=*/false);
      ++attempts;
      journal_retry(*backend);
      continue;
    }
    uint64_t rcorr = 0;
    RequestStatus status{};
    net::peek_serve_response(rpayload.data(), rpayload.size(), &rcorr,
                             &status);  // validated in forward_serve_once
    if (status == RequestStatus::kRejectedUnknownTier) {
      // The replica is healthy — it just does not carry this tier
      // (replicas may pin different tier subsets). Try the next
      // candidate; remember the verdict so exhaustion reports
      // unknown-tier rather than engine failure.
      note_outcome(*backend, true, /*health_probe=*/false);
      saw_unknown_tier = true;
      ++attempts;
      journal_retry(*backend);
      continue;
    }
    if (status_is_retryable(status)) {
      note_outcome(*backend, false, /*health_probe=*/false);
      ++attempts;
      journal_retry(*backend);
      continue;
    }
    // A v3 response must carry a well-formed trailing trace section
    // (possibly empty); one that does not is a protocol violation and
    // fails over like any other bad response.
    size_t trace_start = rpayload.size();
    uint64_t backend_trace = 0;
    std::vector<TraceEvent> backend_stages;
    uint8_t backend_tier = 0;
    if (rhdr.version >= 3 &&
        !net::split_serve_response_trace(rpayload.data(), rpayload.size(),
                                         rhdr.version, &trace_start,
                                         &backend_trace, &backend_stages,
                                         &backend_tier)) {
      note_outcome(*backend, false, /*health_probe=*/false);
      ++attempts;
      continue;
    }
    note_outcome(*backend, true, /*health_probe=*/false);

    // Relay. v3 tracing clients get the backend's stages spliced into
    // this hop's timeline (t = 0 at frame receipt): receipt, every
    // forward attempt — retries included, which is how a failover shows
    // up in one trace — then the backend stages shifted to the
    // successful forward's instant, then the response relay. Pre-v3
    // clients get the trace section stripped byte-exactly; v1 clients
    // additionally get a v1-era status byte.
    if (rhdr.version >= 3) {
      if (hdr.version >= 3 && trace_id != 0) {
        std::vector<TraceEvent> merged;
        merged.push_back({TraceStage::kProxyReceived, 0});
        for (size_t i = 0; i < forward_times.size(); ++i)
          merged.push_back({i == 0 ? TraceStage::kProxyForward
                                   : TraceStage::kProxyRetry,
                            forward_times[i]});
        const int64_t shift = forward_times.back();
        for (TraceEvent ev : backend_stages) {
          ev.t_us += shift;
          merged.push_back(ev);
        }
        merged.push_back({TraceStage::kProxyResponse, rel_now()});
        rpayload.resize(trace_start);
        net::encode_trace_section(trace_id, merged, rpayload);
        // Re-append the resolved-tier byte the trace rebuild truncated
        // (the v4 layout places it after the trace section).
        if (rhdr.version >= 4 && hdr.version >= 4)
          rpayload.push_back(backend_tier);
      } else if (hdr.version < 3) {
        rpayload.resize(trace_start);
      }
    }
    if (hdr.version < 2 &&
        status == RequestStatus::kRejectedUnknownModel &&
        rpayload.size() > 8)
      // lint-wire: fixed-offset status-byte splice, size-guarded above.
      rpayload[8] = static_cast<uint8_t>(RequestStatus::kRejectedInvalid);
    std::vector<uint8_t> out;
    net::FrameHeader relay = rhdr;
    relay.version = hdr.version;
    relay.payload_len = static_cast<uint32_t>(rpayload.size());
    net::encode_frame_header(relay, out);
    out.insert(out.end(), rpayload.begin(), rpayload.end());
    ++served_;
    if (attempts > 0) ++failovers_;
    return send_to_client(fd, out);
  }

  // Every replica failed; the client still gets a terminal response
  // (never a hang, never a dropped connection). If at least one healthy
  // replica answered "no such tier", that — not engine failure — is the
  // fleet's verdict.
  if (saw_unknown_tier) {
    ++unknown_tier_;
    synthesize_serve_response(fd, hdr.version, correlation,
                              RequestStatus::kRejectedUnknownTier);
    return true;
  }
  ++exhausted_;
  synthesize_serve_response(fd, hdr.version, correlation,
                            RequestStatus::kEngineError);
  return true;
}

bool ShardProxy::handle_info(int fd, const net::FrameHeader& hdr,
                             const uint8_t* payload, size_t len) {
  std::string model;
  uint8_t tier = 0;
  if (!net::decode_info_request(payload, len, hdr.version, &model, &tier)) {
    ++protocol_errors_;
    return false;
  }
  const std::string& resolved = model.empty() ? default_model_ : model;
  for (Backend* backend : candidates_for(resolved, tier)) {
    std::optional<nn::BertConfig> config;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          config = conn->query_info(resolved, tier);
          // In-band "no such model/tier" leaves the transport healthy;
          // anything else condemned the connection already.
          return config.has_value() ||
                 (conn->connected() &&
                  conn->error_kind() == net::ClientError::kNone);
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (config) {
      net::WireInfo info;
      info.model = resolved;
      info.tier = tier;
      info.config = *config;
      std::vector<uint8_t> out;
      net::encode_info_response(info, out, hdr.version);
      return send_to_client(fd, out);
    }
  }
  if (hdr.version >= 2) {
    std::string msg = "no reachable backend serves model '" + resolved + "'";
    if (tier != 0) msg += " at tier int" + std::to_string(tier);
    std::vector<uint8_t> out;
    net::encode_admin_response(false, msg, out);
    return send_to_client(fd, out);
  }
  // v1 cannot carry an in-band failure on the info path — same dead end
  // as a router with no default lane: close.
  return false;
}

bool ShardProxy::handle_list(int fd, const net::FrameHeader& hdr,
                             size_t payload_len) {
  if (payload_len != 0) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  // Union of every reachable backend's (model, tier) rows. v4 clients
  // see the tier column; pre-v4 clients see each name once, as before.
  std::set<std::pair<std::string, uint8_t>> entries;
  bool any_backend = false;
  for (const auto& backend : backends_) {
    if (backend_state(*backend) == BackendState::kDown) continue;
    std::optional<std::vector<net::WireModelEntry>> list;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          list = conn->list_models_tiered();
          return list.has_value();
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (!list) continue;
    any_backend = true;
    for (const net::WireModelEntry& e : *list)
      entries.insert({e.name, e.tier});
  }
  std::vector<uint8_t> out;
  if (!any_backend) {
    net::encode_admin_response(false, "no backend reachable", out);
  } else {
    std::vector<net::WireModelEntry> rows;
    rows.reserve(entries.size());
    for (const auto& [name, entry_tier] : entries) {
      if (hdr.version < 4) {
        // Tiers of one model are adjacent in the ordered set, so a
        // names-only view is a single dedupe pass.
        if (!rows.empty() && rows.back().name == name) continue;
        rows.push_back({name, 0});
      } else {
        rows.push_back({name, entry_tier});
      }
    }
    net::encode_model_list(rows, out, hdr.version);
  }
  return send_to_client(fd, out);
}

std::vector<ServeStats::Report> ShardProxy::collect_reports(
    const std::string& model, uint8_t tier) {
  std::vector<ServeStats::Report> reports;
  for (Backend* backend : candidates_for(model, tier)) {
    std::optional<net::WireStats> stats;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          stats = conn->query_stats(model, tier);
          return stats.has_value() ||
                 (conn->connected() &&
                  conn->error_kind() == net::ClientError::kNone);
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (stats) reports.push_back(std::move(stats->report));
  }
  return reports;
}

std::vector<ShardProxy::TierStats> ShardProxy::aggregate_stats() {
  std::vector<TierStats> out;
  for (const auto& [name, replicas] : placement_) {
    // One fleet row per (model, declared tier). Generic declarations
    // aggregate under tier 0 — the default lane's bit-width is the
    // backend's business, not the placement table's.
    std::set<int> tiers;
    for (const Placed& p : replicas) tiers.insert(p.tier);
    for (const int tier : tiers) {
      std::vector<ServeStats::Report> reports =
          collect_reports(name, static_cast<uint8_t>(tier));
      if (!reports.empty())
        out.push_back({name, tier, ServeStats::aggregate(reports)});
    }
  }
  return out;
}

bool ShardProxy::handle_dump_events(int fd, const net::FrameHeader& hdr,
                                    const uint8_t* payload, size_t len) {
  uint64_t since_ns = 0;
  uint32_t max_events = 0;
  if (hdr.version < 2 ||
      !net::decode_dump_events(payload, len, &since_ns, &max_events)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  // The fleet journal: this proxy's own events (health transitions,
  // failover retries) merged with every reachable backend's dump. All
  // journals stamp CLOCK_MONOTONIC of their own host — on one machine
  // (the test and dev topology) the merged order is the true order;
  // across machines rows still group correctly per process.
  std::vector<net::WireEvent> merged =
      wire_events(FlightRecorder::instance(), since_ns, max_events);
  for (const auto& backend : backends_) {
    if (backend_state(*backend) == BackendState::kDown) continue;
    std::optional<std::vector<net::WireEvent>> events;
    const bool transport_ok =
        with_backend_conn(*backend, [&](net::ClientPool::Handle& conn) {
          events = conn->dump_events(since_ns, max_events);
          return events.has_value();
        });
    note_outcome(*backend, transport_ok, /*health_probe=*/false);
    if (events)
      merged.insert(merged.end(), events->begin(), events->end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::WireEvent& a, const net::WireEvent& b) {
                     return a.t_ns < b.t_ns;
                   });
  const size_t cap = max_events == 0
                         ? static_cast<size_t>(net::kMaxDumpEvents)
                         : std::min<size_t>(max_events, net::kMaxDumpEvents);
  if (merged.size() > cap)
    merged.erase(merged.begin(),
                 merged.begin() + static_cast<ptrdiff_t>(merged.size() - cap));
  std::vector<uint8_t> out;
  net::encode_event_dump(merged, out, hdr.version);
  return send_to_client(fd, out);
}

bool ShardProxy::handle_stats(int fd, const net::FrameHeader& hdr,
                              const uint8_t* payload, size_t len) {
  std::string name;
  uint8_t tier = 0;
  if (!net::decode_stats_request(payload, len, hdr.version, &name, &tier)) {
    ++protocol_errors_;
    return false;
  }
  ++admin_frames_;
  const std::string& resolved = name.empty() ? default_model_ : name;
  std::vector<ServeStats::Report> reports = collect_reports(resolved, tier);
  std::vector<uint8_t> out;
  if (reports.empty()) {
    std::string what = "'" + resolved + "'";
    if (tier != 0) what += " at tier int" + std::to_string(tier);
    net::encode_admin_response(
        false,
        placement_.count(resolved) == 0
            ? "no model named '" + resolved + "' is in the placement table"
            : "no reachable backend reports stats for " + what,
        out);
  } else {
    // The pooled clients speak v4, so each report arrives with its
    // lane's quantile sketch and the aggregate's quantiles are EXACT
    // (merge of sketches == sketch of the pooled samples). Encoded at
    // the client's version: pre-v3 clients get the sketchless prefix.
    net::WireStats agg;
    agg.model = resolved;
    agg.tier = tier;
    agg.report = ServeStats::aggregate(reports);
    net::encode_stats_response(agg, out, hdr.version);
  }
  return send_to_client(fd, out);
}

}  // namespace fqbert::serve::shard
