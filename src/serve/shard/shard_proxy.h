// ShardProxy: the multi-host routing layer. A thin TCP proxy that
// speaks the exact same frame protocol as TransportServer on its front
// side, and fronts N backend TransportServers (each a ModelRouter on
// its own host/port) from a LIVE placement table (PlacementTable):
//
//   model name -> ordered backend list (primary first, replicas after)
//
// built from per-backend model declarations. A declaration names a
// model and optionally pins a precision tier (`"mnli"` = the backend's
// default tier, `"mnli@int4"` / `"mnli@4"` = only that tier), so
// replicas of one logical model may carry different tier subsets.
// Clients — TransportClient, `loadgen --connect`, `admin --connect` —
// need no change: to them the proxy looks like one big router serving
// the union of every backend's (model, tier) pairs.
//
//   ShardProxy proxy(cfg);
//   proxy.add_backend("10.0.0.1", 9000, {"sst2", "mnli@8"});
//   proxy.add_backend("10.0.0.2", 9000, {"mnli@4", "qqp"});  // mnli x2
//   proxy.start();            // listens; health checks begin
//   ... clients connect to proxy.port() ...
//   proxy.stop();
//
// Dynamic placement (protocol v5): membership and placement are no
// longer fixed at start(). The data path routes each request against
// ONE immutable RoutingState snapshot (an atomic shared_ptr load — no
// per-request lock), while the proxy-admin frames mutate the table
// under a control mutex and publish a new snapshot with the epoch
// bumped:
//   * ADD_BACKEND dials + probes the new backend, then flips the
//     epoch so traffic starts flowing to it;
//   * REMOVE_BACKEND flips the epoch FIRST (no new request routes
//     there), drains in-flight forwards, then retires the pooled
//     connections — drain-first, so nothing is dropped;
//   * MOVE_MODEL is the zero-drop migration: LOAD the (model, tier)
//     on the target, flip the epoch, drain the source, UNLOAD there
//     (the backend's own lane drain covers any straggler);
//   * GET_PLACEMENT answers the current generation (epoch, policy,
//     per-backend cells + health).
// A request that resolved replicas on epoch N and fails because the
// world moved (all replicas condemned, or a backend answering
// "unknown model/tier" mid-migration) re-resolves on the CURRENT
// epoch and retries instead of erroring — serve requests are
// idempotent, so the retry is always safe.
//
// Placement policies: kExplicit keeps the fixed-table behavior
// (declaration order, deterministic primary); kConsistentHash routes
// each request by hash-ring walk keyed on its trace/correlation id,
// so a joining replica takes over only its own arcs.
//
// Forwarding: serve frames are routed by the (model name, tier) peeked
// from the payload prefix (tier 0 for pre-v4 clients = the default
// tier). Placement prefers replicas pinned to the requested tier, then
// generic (unpinned) replicas; a generic replica that turns out not to
// serve the tier answers kRejectedUnknownTier, which fails over like a
// transport error. A v3/v4 frame that already names a model is
// forwarded VERBATIM over a pooled persistent TransportClient
// connection (token arrays are never re-decoded); empty-model and
// pre-v3 frames are rewritten — a byte splice — to the v4 dialect
// carrying the resolved model, the client's tier (or 0) and a trace id
// (the client's when it sent one, a freshly minted one otherwise, so
// every request is traceable even from v1/v2 clients). On relay the
// backend's trailing trace section is spliced into the proxy hop's
// timeline (kProxyReceived / kProxyForward / kProxyRetry per attempt,
// backend stages shifted to the forward instant, kProxyResponse last)
// for v3+ clients — a v4 client additionally keeps the resolved-tier
// byte that trails the trace — or stripped byte-exactly for v1/v2
// clients; logits bytes are never touched either way.
//
// Health + failover: a background thread pings every backend (info
// frame with a short timeout) on a fixed interval; data-path outcomes
// feed the same state machine:
//
//   healthy --[suspect_after consecutive failures]--> suspect
//   suspect --[down_after total consecutive failures]--> down
//   any     --[recover_after consecutive successes]--> healthy (recovery)
//
// A serve request tries its model's replicas in placement order,
// non-down backends first; a transport-level failure (dead connection,
// timeout) or a kShutdown/kEngineError response triggers failover to
// the next replica instead of surfacing the failure — serve requests
// are idempotent (pure inference), so a retry is always safe. Only when
// every replica fails does the client see a synthesized kEngineError
// response (never a hung connection).
//
// Control plane through the proxy: LIST_MODELS fans out to every
// reachable backend and returns the union; STATS(name) fans out to the
// model's replicas and returns the ServeStats::aggregate of their
// reports — the replicas' quantile sketches merge exactly, so the
// fleet-wide p50/p95/p99/p99.9 equal a sketch built from the pooled
// per-request samples, not a weighted average of per-shard quantiles.
// Plain LOAD/UNLOAD are refused in-band — engine management either
// targets a backend directly or rides the MOVE_MODEL migration, which
// keeps the placement table in sync by construction. Fan-outs iterate
// an immutable routing snapshot, so a backend removed mid-fan-out is
// simply skipped (its pool is closed and checkouts fail fast), never a
// crash or a hang.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "platform/thread_annotations.h"
#include "serve/net/client_pool.h"
#include "serve/net/frame.h"
#include "serve/shard/placement.h"

namespace fqbert::serve::shard {

enum class BackendState { kHealthy, kSuspect, kDown };
const char* backend_state_name(BackendState s);

struct ShardProxyConfig {
  std::string bind_address = "127.0.0.1";
  /// Front-side TCP port; 0 binds an ephemeral port (see port()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Client connections above this are closed at accept.
  size_t max_connections = 256;
  /// Warm backend connections kept per backend (checkouts beyond this
  /// still work, transiently).
  size_t pool_capacity = 4;
  /// Dial timeout for backend connections.
  Micros connect_timeout{2'000'000};
  /// Whole-frame receive budget for one forwarded call; on expiry the
  /// backend connection is condemned and the request fails over.
  Micros call_timeout{30'000'000};
  /// Health-check cadence and per-ping budget.
  Micros health_interval{500'000};
  Micros health_timeout{1'000'000};
  /// State-machine thresholds (consecutive outcomes, health checks and
  /// data-path calls alike).
  int suspect_after = 1;
  int down_after = 3;
  int recover_after = 2;
  /// How replica lists are ordered per request (see placement.h).
  PlacementPolicy policy = PlacementPolicy::kExplicit;
  /// Upper bound on waiting out a removed/migrated-away backend's
  /// in-flight forwards before its connections are retired. Forwards
  /// are already bounded by call_timeout, so this only fires when a
  /// backend wedges mid-drain.
  Micros drain_timeout{10'000'000};
};

class ShardProxy {
 public:
  explicit ShardProxy(const ShardProxyConfig& cfg = {});
  ~ShardProxy();

  ShardProxy(const ShardProxy&) = delete;
  ShardProxy& operator=(const ShardProxy&) = delete;

  /// Declare a backend and the models it serves (placement order =
  /// call order = failover order). Each entry is `name` (the backend's
  /// default tier) or `name@intN` / `name@N` (only that precision
  /// tier). Before start() only. False (with *error) on a duplicate
  /// host:port, an empty model list, a malformed tier suffix, or a
  /// (model, tier) pair repeated within the same backend; the same
  /// model on DIFFERENT backends is replication, the entire point.
  bool add_backend(const std::string& host, uint16_t port,
                   const std::vector<std::string>& models,
                   std::string* error = nullptr);

  /// Bind + listen + spawn the accept and health-check threads. False
  /// (message on stderr) when no backend was added or the socket
  /// cannot be bound.
  bool start();

  /// Close the listener and every client connection, join all threads,
  /// and drop pooled backend connections. Safe to call twice.
  void stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_; }

  /// Name the empty model id routes to: the first model of the first
  /// backend ("" before any add_backend).
  const std::string& default_model() const { return default_model_; }
  /// Every model in the placement table, name-ordered.
  std::vector<std::string> model_names() const;

  /// Run one synchronous health round now (tests; the background
  /// thread keeps its own cadence).
  void check_backends_now();

  // -------------------------------------------------------------------
  // Dynamic placement (the ADD_BACKEND / REMOVE_BACKEND / MOVE_MODEL /
  // GET_PLACEMENT frames land here; also callable in-process). Each
  // mutator serializes on the control mutex, never blocks the data
  // path, and returns false with a human-readable *error on refusal.
  // -------------------------------------------------------------------

  /// Register a live backend while the proxy is running: validates the
  /// declarations, dials one health probe (an unreachable backend is
  /// refused — it would only blackhole traffic), then flips the
  /// placement epoch so requests start routing to it.
  bool admin_add_backend(const std::string& host, uint16_t port,
                         const std::vector<std::string>& models,
                         std::string* error = nullptr);

  /// Drain-first removal of `address` ("host:port"): the epoch flips
  /// before anything is torn down (no new request routes there), then
  /// in-flight forwards are waited out (bounded by drain_timeout) and
  /// the backend's pooled connections are retired. Refused when the
  /// backend is the last replica of any model.
  bool admin_remove_backend(const std::string& address,
                            std::string* error = nullptr);

  /// Zero-drop migration of (model, tier) from `from` to `to`: ensure
  /// the target serves the cell (LOAD from `path`, or mint/verify from
  /// what it already has when `path` is empty), flip the epoch, drain
  /// the source's in-flight forwards, then UNLOAD the cell there (a
  /// failed unload degrades to a warning in *error — placement is
  /// already correct, the source just holds a dormant engine).
  bool admin_move_model(const std::string& model, uint8_t tier,
                        const std::string& from, const std::string& to,
                        const std::string& path = "",
                        std::string* error = nullptr);

  uint64_t placement_epoch() const { return placement_.epoch(); }
  PlacementPolicy placement_policy() const { return placement_.policy(); }
  /// The current placement generation in wire shape (epoch, policy,
  /// per-backend cells + live health state), members in join order.
  net::WirePlacement placement_view() const;

  struct BackendStatus {
    std::string address;  // "host:port"
    BackendState state = BackendState::kHealthy;
    std::vector<std::string> models;
    uint64_t health_ok = 0, health_failed = 0;
    uint64_t forwarded = 0;         // successful data-path calls
    uint64_t forward_failures = 0;  // failed data-path calls
    uint64_t recoveries = 0;        // down/suspect -> healthy transitions
  };
  std::vector<BackendStatus> backend_status() const;

  struct Counters {
    uint64_t accepted = 0;
    uint64_t served = 0;           // serve frames relayed with a response
    uint64_t failovers = 0;        // responses served by a non-first try
    uint64_t exhausted = 0;        // all replicas failed -> synthesized
    uint64_t unknown_model = 0;    // no placement entry for the name
    uint64_t unknown_tier = 0;     // model placed, but not at that tier
    uint64_t protocol_errors = 0;  // client connections closed on decode
    uint64_t admin_frames = 0;     // LIST/STATS/LOAD/UNLOAD handled
    uint64_t health_transitions = 0;  // state-machine edges taken
    uint64_t placement_changes = 0;   // epochs published after start()
    uint64_t epoch_retries = 0;  // requests re-resolved on a newer epoch
  };
  Counters counters() const;

  /// One fleet-wide stats row: a model at one declared tier (0 = the
  /// replicas' default tier, i.e. an unpinned placement entry).
  struct TierStats {
    std::string model;
    int tier = 0;
    ServeStats::Report report;
  };

  /// Fleet-wide stats: for every (model, declared tier) in the
  /// placement table, fan the STATS query out to its replicas and merge
  /// the reports (exact quantiles via the merged sketches). Rows with
  /// no reachable replica are omitted. Blocking network fan-out — this
  /// is the /metrics scrape path, not the data path.
  std::vector<TierStats> aggregate_stats();

 private:
  struct Backend {
    Backend(std::string host_in, uint16_t port_in,
            std::vector<std::string> models_in,
            const net::ClientPoolConfig& pool_cfg)
        : host(std::move(host_in)),
          port(port_in),
          address(host + ":" + std::to_string(port)),
          models(std::move(models_in)),
          pool(host, port, pool_cfg) {}

    const std::string host;
    const uint16_t port;
    const std::string address;
    /// Declarations as given ("name" / "name@intN"), for status views.
    const std::vector<std::string> models;
    net::ClientPool pool;

    /// Forwards currently holding one of this backend's connections
    /// (serve forwards and admin fan-outs alike). The drain step of
    /// REMOVE_BACKEND / MOVE_MODEL waits for this to reach zero after
    /// the epoch flip — the zero-drop guarantee.
    std::atomic<uint64_t> inflight{0};

    /// Dedicated ping connection (health thread + check_backends_now).
    Mutex health_mu;
    net::TransportClient health GUARDED_BY(health_mu);

    mutable Mutex mu;  // state machine + counters below
    BackendState state GUARDED_BY(mu) = BackendState::kHealthy;
    int fail_streak GUARDED_BY(mu) = 0;
    int ok_streak GUARDED_BY(mu) = 0;
    uint64_t health_ok GUARDED_BY(mu) = 0;
    uint64_t health_failed GUARDED_BY(mu) = 0;
    uint64_t forwarded GUARDED_BY(mu) = 0;
    uint64_t forward_failures GUARDED_BY(mu) = 0;
    uint64_t recoveries GUARDED_BY(mu) = 0;
  };

  /// One immutable routing generation: the placement snapshot plus the
  /// live Backend objects it refers to. The data path loads this once
  /// per decision (atomic shared_ptr) and never sees membership tear;
  /// a removed Backend stays alive — via this shared_ptr graph — until
  /// its last in-flight user lets go, then its destructor closes the
  /// remaining descriptors.
  struct RoutingState {
    std::shared_ptr<const PlacementSnapshot> placement;
    /// Address -> backend, mirroring placement->by_backend.
    std::map<std::string, std::shared_ptr<Backend>> backends;
    /// Join order (status / fan-out / metrics iteration order).
    std::vector<std::shared_ptr<Backend>> order;
  };

  std::shared_ptr<const RoutingState> routing() const {
    return routing_.load(std::memory_order_acquire);
  }
  /// Rebuild the RoutingState from placement_'s current snapshot plus
  /// `backends` and publish it. Callers hold control_mu_ (mutators) or
  /// run pre-start single-threaded.
  void publish_routing(std::map<std::string, std::shared_ptr<Backend>> backends)
      REQUIRES(control_mu_);

  void accept_loop();
  void health_loop();
  void run_health_round();
  void serve_connection(uint64_t conn_id, int fd);
  /// Dispatch one complete frame. False closes the client connection.
  bool handle_frame(int fd, const net::FrameHeader& hdr,
                    const uint8_t* frame, size_t frame_len);
  bool handle_serve(int fd, const net::FrameHeader& hdr,
                    const uint8_t* frame, size_t frame_len);
  bool handle_info(int fd, const net::FrameHeader& hdr,
                   const uint8_t* payload, size_t len);
  bool handle_list(int fd, const net::FrameHeader& hdr, size_t payload_len);
  bool handle_stats(int fd, const net::FrameHeader& hdr,
                    const uint8_t* payload, size_t len);
  /// DUMP_EVENTS through the proxy: fan out to every non-down backend,
  /// merge their journals with the proxy's own (health transitions,
  /// failover retries), and answer one time-ordered kEventDump.
  bool handle_dump_events(int fd, const net::FrameHeader& hdr,
                          const uint8_t* payload, size_t len);
  // Proxy-admin frames (v5): thin decode wrappers over the admin_*
  // methods; each answers kAdminResponse (kPlacement for GET).
  bool handle_add_backend(int fd, const net::FrameHeader& hdr,
                          const uint8_t* payload, size_t len);
  bool handle_remove_backend(int fd, const net::FrameHeader& hdr,
                             const uint8_t* payload, size_t len);
  bool handle_move_model(int fd, const net::FrameHeader& hdr,
                         const uint8_t* payload, size_t len);
  bool handle_get_placement(int fd, const net::FrameHeader& hdr, size_t len);

  /// Run `op` against one of `backend`'s pooled connections. A REUSED
  /// connection may have died while parked in the pool, so a FAST
  /// failure on it (peer closed / reset: kClosed, kIo) says nothing
  /// about the backend: the stale lease is discarded and `op` re-runs
  /// on another checkout, until it succeeds or fails on a
  /// freshly-dialed connection (the genuine verdict). A TIMEOUT or
  /// protocol violation is never retried — the peer is alive and
  /// misbehaving, and re-paying call_timeout once per parked
  /// connection would turn one wedged backend into minutes of stall.
  /// `op` returns transport-level success; in-band application
  /// failures count as success here.
  template <typename Op>
  bool with_backend_conn(Backend& backend, Op&& op) {
    // Drain accounting: a remove/migrate waits for inflight to hit
    // zero after unrouting the backend, so every connection use —
    // serve forwards and admin fan-outs alike — must be counted.
    backend.inflight.fetch_add(1, std::memory_order_acq_rel);
    struct InflightGuard {
      std::atomic<uint64_t>& count;
      ~InflightGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
    } guard{backend.inflight};
    for (;;) {
      if (stopping_) return false;  // shutting down: no (re-)dials
      net::ClientPool::Handle conn = backend.pool.checkout();
      if (!conn) return false;  // fresh dial failed: backend unreachable
      const bool was_reused = conn.reused();
      if (op(conn)) return true;
      if (stopping_) return false;  // shutdown aborted the call: no re-dial
      if (!was_reused) return false;
      const net::ClientError kind =
          conn ? conn->error_kind() : net::ClientError::kProtocol;
      if (kind != net::ClientError::kClosed &&
          kind != net::ClientError::kIo)
        return false;
    }
  }

  /// Spin out `backend`'s in-flight forwards (bounded by
  /// cfg_.drain_timeout) after it has been unrouted by an epoch flip.
  void drain_backend(Backend& backend);

  /// One forwarding attempt of a serve frame against one backend
  /// (stale pooled connections internally retried via
  /// with_backend_conn). On success the response frame is in
  /// rhdr/rpayload.
  bool forward_serve_once(Backend& backend, const uint8_t* frame,
                          size_t frame_len, uint64_t expect_correlation,
                          net::FrameHeader* rhdr,
                          std::vector<uint8_t>& rpayload);

  /// Replicas for (`model`, `tier`) against ONE routing snapshot, in
  /// placement order (declaration order, or ring order from
  /// `route_key` under kConsistentHash): entries pinned to the
  /// requested tier first, then unpinned (generic) entries — within
  /// each group non-down before down (a down backend is still tried
  /// last — health data may be stale). Tier 0 prefers generic entries
  /// over pinned ones. Each backend appears at most once.
  std::vector<std::shared_ptr<Backend>> candidates_for(
      const RoutingState& routing, const std::string& model, uint8_t tier,
      uint64_t route_key) const;

  /// Query every reachable replica of (`model`, `tier`) for its stats
  /// report (outcomes feed the health state machine like any data-path
  /// call).
  std::vector<ServeStats::Report> collect_reports(const RoutingState& routing,
                                                  const std::string& model,
                                                  uint8_t tier);

  void note_outcome(Backend& backend, bool success, bool health_probe);
  BackendState backend_state(const Backend& backend) const;

  bool send_to_client(int fd, const std::vector<uint8_t>& bytes);
  void synthesize_serve_response(int fd, uint8_t client_version,
                                 uint64_t correlation_id,
                                 RequestStatus status);

  ShardProxyConfig cfg_;
  /// Serializes every membership/placement mutation (pre-start
  /// add_backend and the live admin_* mutators). Never taken on the
  /// data path.
  Mutex control_mu_;
  /// The versioned (model, tier) -> replicas table; source of truth
  /// for epochs.
  PlacementTable placement_;
  /// The live routing generation (placement snapshot + Backend
  /// objects). Atomic swap on every mutation; readers pin one
  /// generation for a whole decision.
  std::atomic<std::shared_ptr<const RoutingState>> routing_;
  std::string default_model_;

  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::thread health_thread_;

  Mutex conns_mu_;
  std::map<uint64_t, int> conn_fds_ GUARDED_BY(conns_mu_);
  std::map<uint64_t, std::thread> conn_threads_ GUARDED_BY(conns_mu_);
  /// Reaped by the accept loop.
  std::vector<uint64_t> finished_conns_ GUARDED_BY(conns_mu_);
  uint64_t next_conn_id_ GUARDED_BY(conns_mu_) = 1;

  /// Orders stop()'s stopping_ store against the health loop's
  /// check-then-wait (lost-wakeup prevention); guards no data.
  Mutex health_cv_mu_;
  std::condition_variable health_cv_;

  std::atomic<uint64_t> accepted_{0}, served_{0}, failovers_{0};
  std::atomic<uint64_t> exhausted_{0}, unknown_model_{0};
  std::atomic<uint64_t> unknown_tier_{0};
  std::atomic<uint64_t> protocol_errors_{0}, admin_frames_{0};
  std::atomic<uint64_t> health_transitions_{0};
  std::atomic<uint64_t> placement_changes_{0}, epoch_retries_{0};
};

}  // namespace fqbert::serve::shard
