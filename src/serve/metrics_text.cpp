#include "serve/metrics_text.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "serve/build_info.h"
#include "serve/router/model_router.h"
#include "serve/shard/shard_proxy.h"

namespace fqbert::serve {

namespace {

/// Escape a label value per the exposition format: backslash, double
/// quote and newline. Model names and addresses never contain these,
/// but the renderer must not be the component that trusts that.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void head(std::string& out, const char* name, const char* help,
          const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample_u64(std::string& out, const char* name, const std::string& labels,
                uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += buf;
  out += '\n';
}

void sample_f64(std::string& out, const char* name, const std::string& labels,
                double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += buf;
  out += '\n';
}

std::string model_label(const std::string& model, int tier) {
  return "model=\"" + escape_label(model) + "\",tier=\"" +
         std::to_string(tier) + "\"";
}

/// The build-identity gauge every exposition leads with: constant 1,
/// all the identity in the labels — the standard Prometheus idiom for
/// joining fleet metrics to a binary version.
void render_build_info(std::string& out) {
  head(out, "fqbert_build_info",
       "Build identity of this binary (constant 1; identity in labels)",
       "gauge");
  sample_u64(out, "fqbert_build_info",
             "version=\"" + escape_label(build_version()) + "\",git_sha=\"" +
                 escape_label(build_git_sha()) + "\",compiler=\"" +
                 escape_label(build_compiler()) + "\",sanitizer=\"" +
                 escape_label(build_sanitizer()) + "\"",
             1);
}

/// The per-(model, tier) serve families shared by the router renderer
/// and the proxy's fleet-wide aggregate. Rows need .model / .tier /
/// .report (ModelRouter::LaneStats, shard::ShardProxy::TierStats).
template <typename Row>
void render_model_reports(std::string& out,
                          const std::vector<Row>& stats) {
  head(out, "fqbert_requests_total",
       "Requests by terminal outcome (admitted = "
       "completed + failed + timed_out holds per model)",
       "counter");
  static constexpr struct {
    const char* outcome;
    uint64_t ServeStats::Report::* field;
  } kOutcomes[] = {
      {"admitted", &ServeStats::Report::admitted},
      {"completed", &ServeStats::Report::completed},
      {"failed", &ServeStats::Report::failed},
      {"timed_out", &ServeStats::Report::timed_out},
      {"rejected_full", &ServeStats::Report::rejected_full},
      {"rejected_deadline", &ServeStats::Report::rejected_deadline},
      {"rejected_invalid", &ServeStats::Report::rejected_invalid},
      {"rejected_closed", &ServeStats::Report::rejected_closed},
  };
  for (const Row& row : stats)
    for (const auto& o : kOutcomes)
      sample_u64(out, "fqbert_requests_total",
                 model_label(row.model, row.tier) + ",outcome=\"" +
                     o.outcome + "\"",
                 row.report.*o.field);

  head(out, "fqbert_batches_total", "Batches executed", "counter");
  for (const Row& row : stats)
    sample_u64(out, "fqbert_batches_total", model_label(row.model, row.tier),
               row.report.batches);

  head(out, "fqbert_batch_occupancy", "Mean requests per executed batch",
       "gauge");
  for (const Row& row : stats)
    sample_f64(out, "fqbert_batch_occupancy",
               model_label(row.model, row.tier),
               row.report.mean_batch_occupancy);

  head(out, "fqbert_queue_ms_mean",
       "Mean admission-to-batch-formation wait in milliseconds", "gauge");
  for (const Row& row : stats)
    sample_f64(out, "fqbert_queue_ms_mean", model_label(row.model, row.tier),
               row.report.mean_queue_ms);

  head(out, "fqbert_latency_ms",
       "End-to-end serve latency quantiles in milliseconds "
       "(mergeable sketch, lifetime)",
       "summary");
  static constexpr struct {
    const char* q;
    double ServeStats::Report::* field;
  } kQuantiles[] = {
      {"0.5", &ServeStats::Report::p50_ms},
      {"0.95", &ServeStats::Report::p95_ms},
      {"0.99", &ServeStats::Report::p99_ms},
      {"0.999", &ServeStats::Report::p999_ms},
  };
  for (const Row& row : stats) {
    for (const auto& q : kQuantiles)
      sample_f64(out, "fqbert_latency_ms",
                 model_label(row.model, row.tier) + ",quantile=\"" + q.q +
                     "\"",
                 row.report.*q.field);
    sample_u64(out, "fqbert_latency_ms_count",
               model_label(row.model, row.tier), row.report.latency_samples);
  }

  head(out, "fqbert_latency_max_ms",
       "Maximum observed serve latency in milliseconds (exact)", "gauge");
  for (const Row& row : stats)
    sample_f64(out, "fqbert_latency_max_ms", model_label(row.model, row.tier),
               row.report.max_ms);
}

}  // namespace

std::string render_router_metrics(const ModelRouter& router) {
  std::string out;
  out.reserve(4096);
  render_build_info(out);
  render_model_reports(out, router.all_stats());

  head(out, "fqbert_queue_depth",
       "Instantaneous backlog: admission queue + batcher pending", "gauge");
  for (const auto& d : router.queue_depths())
    sample_u64(out, "fqbert_queue_depth", model_label(d.model, d.tier),
               d.depth);

  head(out, "fqbert_unknown_model_rejections_total",
       "Requests naming a model no lane serves", "counter");
  sample_u64(out, "fqbert_unknown_model_rejections_total", "",
             router.unknown_model_rejections());

  head(out, "fqbert_unknown_tier_rejections_total",
       "Requests naming a precision tier their model does not serve",
       "counter");
  sample_u64(out, "fqbert_unknown_tier_rejections_total", "",
             router.unknown_tier_rejections());

  head(out, "fqbert_workers", "Shared worker threads", "gauge");
  sample_u64(out, "fqbert_workers", "", router.num_workers());

  head(out, "fqbert_uptime_seconds", "Seconds since the router started",
       "gauge");
  sample_f64(out, "fqbert_uptime_seconds", "", router.uptime_s());
  return out;
}

std::string render_proxy_metrics(shard::ShardProxy& proxy) {
  std::string out;
  out.reserve(4096);
  render_build_info(out);

  const auto c = proxy.counters();
  static constexpr const char* kHelp =
      "Shard proxy lifetime counter";
  const std::pair<const char*, uint64_t> counters[] = {
      {"fqbert_proxy_accepted_total", c.accepted},
      {"fqbert_proxy_served_total", c.served},
      {"fqbert_proxy_failovers_total", c.failovers},
      {"fqbert_proxy_exhausted_total", c.exhausted},
      {"fqbert_proxy_unknown_model_total", c.unknown_model},
      {"fqbert_proxy_unknown_tier_total", c.unknown_tier},
      {"fqbert_proxy_protocol_errors_total", c.protocol_errors},
      {"fqbert_proxy_admin_frames_total", c.admin_frames},
      {"fqbert_proxy_health_transitions_total", c.health_transitions},
      {"fqbert_proxy_placement_changes_total", c.placement_changes},
      {"fqbert_proxy_epoch_retries_total", c.epoch_retries},
  };
  for (const auto& [name, value] : counters) {
    head(out, name, kHelp, "counter");
    sample_u64(out, name, "", value);
  }

  head(out, "fqbert_proxy_placement_epoch",
       "Current placement table generation (bumps on every membership "
       "or placement change)",
       "gauge");
  sample_u64(out, "fqbert_proxy_placement_epoch", "",
             proxy.placement_epoch());

  head(out, "fqbert_proxy_placement_info",
       "Placement policy identity (constant 1; policy in the label)",
       "gauge");
  sample_u64(out, "fqbert_proxy_placement_info",
             "policy=\"" +
                 std::string(shard::placement_policy_name(
                     proxy.placement_policy())) +
                 "\"",
             1);

  head(out, "fqbert_backend_state",
       "Backend health state machine position (one-hot)", "gauge");
  const auto backends = proxy.backend_status();
  static constexpr shard::BackendState kStates[] = {
      shard::BackendState::kHealthy, shard::BackendState::kSuspect,
      shard::BackendState::kDown};
  for (const auto& b : backends) {
    const std::string backend = "backend=\"" + escape_label(b.address) + "\"";
    for (const shard::BackendState s : kStates)
      sample_u64(out, "fqbert_backend_state",
                 backend + ",state=\"" + shard::backend_state_name(s) + "\"",
                 b.state == s ? 1 : 0);
  }

  head(out, "fqbert_backend_health_checks_total",
       "Health probes by result", "counter");
  for (const auto& b : backends) {
    const std::string backend = "backend=\"" + escape_label(b.address) + "\"";
    sample_u64(out, "fqbert_backend_health_checks_total",
               backend + ",result=\"ok\"", b.health_ok);
    sample_u64(out, "fqbert_backend_health_checks_total",
               backend + ",result=\"failed\"", b.health_failed);
  }

  head(out, "fqbert_backend_forwards_total",
       "Data-path calls forwarded to the backend, by result", "counter");
  for (const auto& b : backends) {
    const std::string backend = "backend=\"" + escape_label(b.address) + "\"";
    sample_u64(out, "fqbert_backend_forwards_total",
               backend + ",result=\"ok\"", b.forwarded);
    sample_u64(out, "fqbert_backend_forwards_total",
               backend + ",result=\"failed\"", b.forward_failures);
  }

  head(out, "fqbert_backend_recoveries_total",
       "Transitions back to healthy", "counter");
  for (const auto& b : backends)
    sample_u64(out, "fqbert_backend_recoveries_total",
               "backend=\"" + escape_label(b.address) + "\"", b.recoveries);

  // Fleet-wide per-model serve stats: the same families a backend's own
  // /metrics exports, but aggregated across replicas with exact sketch
  // merges — the proxy's scrape is the one-stop fleet view.
  render_model_reports(out, proxy.aggregate_stats());
  return out;
}

}  // namespace fqbert::serve
