// MetricsHttpServer: a dependency-free HTTP responder for the
// Prometheus text exposition endpoint. It speaks exactly enough
// HTTP/1.1 for a scraper: parse one GET request line, answer
// `/metrics` with `text/plain; version=0.0.4` (the render callback is
// invoked fresh per scrape), 404 anything else, 405 non-GET methods,
// close. No keep-alive, no chunking, no headers beyond the three a
// scraper needs — observability must not drag an HTTP library into a
// serving binary.
//
//   MetricsHttpServer metrics([&] { return render_router_metrics(r); });
//   metrics.start("127.0.0.1", 9900);          // 0 = ephemeral port
//   ... curl http://127.0.0.1:9900/metrics ...
//   metrics.stop();
//
// Scrapes are handled sequentially on the listener thread: a scrape is
// rare (seconds apart) and cheap, so connection concurrency would buy
// nothing and cost thread management. A slow-loris client cannot wedge
// the endpoint: request reads are bounded by a short deadline and a
// small size cap, after which the connection is dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace fqbert::serve {

class MetricsHttpServer {
 public:
  /// Called once per successful scrape; returns the full exposition
  /// body. Must be safe to call from the listener thread.
  using Renderer = std::function<std::string()>;

  explicit MetricsHttpServer(Renderer renderer);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind + listen + spawn the listener thread. Port 0 binds an
  /// ephemeral port (see port()). False with a message on stderr when
  /// the socket cannot be bound.
  bool start(const std::string& bind_address, uint16_t port);

  /// Close the listener and join the thread. Safe to call twice.
  void stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_; }

 private:
  void serve_loop();
  /// Read one request (bounded), answer it, close. Never throws; a
  /// malformed or slow client just loses its connection.
  void handle_connection(int fd);

  Renderer renderer_;
  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace fqbert::serve
