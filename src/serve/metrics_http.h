// MetricsHttpServer: a dependency-free HTTP responder for the
// Prometheus text exposition endpoint. It speaks exactly enough
// HTTP/1.1 for a scraper: parse one GET request line, answer
// `/metrics` with `text/plain; version=0.0.4` (the render callback is
// invoked fresh per scrape), 404 anything else, 405 non-GET methods,
// close. No keep-alive, no chunking, no headers beyond the three a
// scraper needs — observability must not drag an HTTP library into a
// serving binary.
//
//   MetricsHttpServer metrics([&] { return render_router_metrics(r); });
//   metrics.start("127.0.0.1", 9900);          // 0 = ephemeral port
//   ... curl http://127.0.0.1:9900/metrics ...
//   metrics.stop();
//
// Scrapes are handled sequentially on the listener thread: a scrape is
// rare (seconds apart) and cheap, so connection concurrency would buy
// nothing and cost thread management. A slow-loris client cannot wedge
// the endpoint: the WHOLE request read is bounded by one absolute
// deadline (trickling bytes does not reset it), the request head by a
// size cap, and the request line by its own tighter cap — any breach
// drops the connection.
//
// Beyond /metrics, extra GET endpoints (the /debug introspection
// plane) can be registered before start(): each maps a path to a
// handler receiving the raw query string and returning the body.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace fqbert::serve {

/// Read-side hardening knobs for the HTTP listener.
struct HttpLimits {
  /// Absolute budget for reading ONE whole request head, measured from
  /// accept. A slow-loris client trickling bytes cannot extend it.
  int request_deadline_ms = 2000;
  /// Request-head size cap (the endpoint never buffers a body).
  size_t max_request_bytes = 8 * 1024;
  /// Tighter cap on the request LINE alone: a real scraper's GET line
  /// is well under this, so an over-long line is dropped before the
  /// head cap is anywhere near.
  size_t max_request_line = 1024;
};

class MetricsHttpServer {
 public:
  /// Called once per successful scrape; returns the full exposition
  /// body. Must be safe to call from the listener thread.
  using Renderer = std::function<std::string()>;
  /// Handler for an extra GET endpoint: receives the raw query string
  /// (bytes after '?', empty when absent), returns the response body.
  /// Must be safe to call from the listener thread.
  using Handler = std::function<std::string(const std::string& query)>;

  explicit MetricsHttpServer(Renderer renderer);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Register an extra GET endpoint (e.g. "/debug/events"). Call
  /// before start() only — the routing table is read without a lock on
  /// the listener thread.
  void add_endpoint(const std::string& path, Handler handler,
                    const std::string& content_type = "application/json");

  /// Override the read-hardening limits. Call before start() only.
  void set_limits(const HttpLimits& limits) { limits_ = limits; }
  const HttpLimits& limits() const { return limits_; }

  /// Bind + listen + spawn the listener thread. Port 0 binds an
  /// ephemeral port (see port()). False with a message on stderr when
  /// the socket cannot be bound.
  bool start(const std::string& bind_address, uint16_t port);

  /// Close the listener and join the thread. Safe to call twice.
  void stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_; }

 private:
  void serve_loop();
  /// Read one request (bounded), answer it, close. Never throws; a
  /// malformed or slow client just loses its connection.
  void handle_connection(int fd);

  struct Endpoint {
    Handler handler;
    std::string content_type;
  };

  Renderer renderer_;
  /// Immutable after start() (read lock-free by the listener thread).
  std::map<std::string, Endpoint> endpoints_;
  HttpLimits limits_;
  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace fqbert::serve
