// Worker pool: N threads, each owning an FqBertModel engine instance,
// all pulling batches from one DynamicBatcher. Workers exit when the
// batcher reports closed-and-drained.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "core/fq_bert.h"
#include "serve/batcher.h"

namespace fqbert::serve {

class EnginePool {
 public:
  EnginePool(DynamicBatcher& batcher, ServeStats& stats)
      : batcher_(batcher), stats_(stats) {}
  ~EnginePool() { join(); }

  /// Spawn one worker per engine replica.
  void start(std::vector<std::shared_ptr<const core::FqBertModel>> replicas);

  /// Wait for every worker to exit (call after RequestQueue::close()).
  void join();

  size_t num_workers() const { return workers_.size(); }

 private:
  void worker_loop(const core::FqBertModel& engine);

  DynamicBatcher& batcher_;
  ServeStats& stats_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<const core::FqBertModel>> engines_;
};

}  // namespace fqbert::serve
