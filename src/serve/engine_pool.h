// Worker pool: N threads sharing ONE immutable FqBertModel engine, all
// pulling batches from one DynamicBatcher. forward_batch is
// reentrant-const (weights are read-only after load, scratch is
// per-thread), so weight memory is paid once per model regardless of
// worker count. Workers exit when the batcher reports
// closed-and-drained.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "core/fq_bert.h"
#include "serve/batcher.h"

namespace fqbert::serve {

/// Execute one formed batch on `engine` and resolve every request's
/// promise (logits + latency breakdown on success, kEngineError for the
/// whole batch when the engine throws), recording into `stats`. Shared
/// by EnginePool workers and the ModelRouter's multiplexed worker set.
/// `model` tags the flight-recorder worker events and any retained
/// slow-request exemplars.
void execute_batch(const core::FqBertModel& engine, ServeStats& stats,
                   std::vector<ServeRequest>& batch,
                   const std::string& model = "default");

class EnginePool {
 public:
  EnginePool(DynamicBatcher& batcher, ServeStats& stats)
      : batcher_(batcher), stats_(stats) {}
  ~EnginePool() { join(); }

  /// Spawn `num_workers` workers over the one shared engine.
  void start(std::shared_ptr<const core::FqBertModel> engine,
             int num_workers);

  /// Wait for every worker to exit (call after RequestQueue::close()).
  void join();

  size_t num_workers() const { return workers_.size(); }

 private:
  void worker_loop(const core::FqBertModel& engine);

  DynamicBatcher& batcher_;
  ServeStats& stats_;
  std::vector<std::thread> workers_;
  std::shared_ptr<const core::FqBertModel> engine_;
};

}  // namespace fqbert::serve
