// Shared registry of deployable FQ-BERT engines, keyed by name. Entries
// are either file-backed (each serving worker loads its own replica
// from the serialized engine — bit-identical by the serialization
// round-trip guarantee) or in-memory (every worker shares one
// reentrant-const instance).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fq_bert.h"

namespace fqbert::serve {

class EngineRegistry {
 public:
  /// Share an already-built engine under `name` (replaces any previous
  /// entry). Workers will all point at this single instance.
  void register_model(const std::string& name,
                      std::shared_ptr<const core::FqBertModel> model);

  /// Register a serialized engine file under `name`; the file is loaded
  /// once up front to validate it (and to serve get()). Returns false
  /// when the file cannot be loaded.
  bool register_file(const std::string& name, const std::string& path);

  /// Engine instance for one worker: file-backed entries load a fresh
  /// replica from disk, in-memory entries return the shared instance.
  /// nullptr when the name is unknown.
  std::shared_ptr<const core::FqBertModel> replica(
      const std::string& name) const;

  /// The shared prototype (no replication). nullptr when unknown.
  std::shared_ptr<const core::FqBertModel> get(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FqBertModel> model;
    std::string path;  // empty for in-memory entries
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace fqbert::serve
