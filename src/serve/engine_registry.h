// Shared registry of deployable FQ-BERT engines, keyed by name. Every
// entry — whether registered in-memory or loaded once from a serialized
// engine file — is a single immutable-after-load instance that all
// serving workers share: forward/forward_batch are reentrant-const
// (per-thread scratch, weights read-only), so replicating the weight
// memory per worker buys nothing and is no longer supported.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fq_bert.h"
#include "platform/thread_annotations.h"

namespace fqbert::serve {

class EngineRegistry {
 public:
  /// Share an already-built engine under `name` (replaces any previous
  /// entry). Workers will all point at this single instance.
  void register_model(const std::string& name,
                      std::shared_ptr<const core::FqBertModel> model);

  /// Register a serialized engine file under `name`. The file is loaded
  /// exactly once, here; every worker shares the loaded instance.
  /// Returns false when the file cannot be loaded.
  bool register_file(const std::string& name, const std::string& path);

  /// Remove `name` from the registry. Existing shared_ptr holders keep
  /// the engine alive; only the name binding disappears. False when the
  /// name is unknown.
  bool unregister(const std::string& name);

  /// The shared engine instance. nullptr when the name is unknown.
  std::shared_ptr<const core::FqBertModel> get(const std::string& name) const;

  /// Source path of a file-backed entry ("" for in-memory entries or
  /// unknown names).
  std::string source_path(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FqBertModel> model;
    std::string path;  // empty for in-memory entries
  };
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace fqbert::serve
