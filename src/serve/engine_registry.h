// Shared registry of deployable FQ-BERT engines. A name no longer
// binds one engine: it binds an ordered set of PRECISION TIERS, one
// engine per weight bit-width, so "the" model can be served at int8
// and int4 side by side. Every tier — registered in-memory, loaded
// once from a serialized engine file, or derived from a sibling tier —
// is a single immutable-after-load instance that all serving workers
// share: forward/forward_batch are reentrant-const (per-thread
// scratch, weights read-only), so replicating the weight memory per
// worker buys nothing and is no longer supported.
//
// Replace semantics: registering (name, tier) that already exists
// atomically swaps the binding under the registry lock; in-flight
// holders of the old shared_ptr keep the old engine alive until their
// last reference drops (outside the lock), so replacement under live
// traffic is safe and never frees weights a worker is reading.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fq_bert.h"
#include "platform/thread_annotations.h"

namespace fqbert::serve {

class EngineRegistry {
 public:
  /// Share an already-built engine under `name`, at the tier given by
  /// the engine's own weight_bits. The first tier registered for a
  /// name becomes its default tier. Replaces an existing (name, tier)
  /// binding atomically (see header comment).
  void register_model(const std::string& name,
                      std::shared_ptr<const core::FqBertModel> model);

  /// Register a serialized engine file under `name`; the tier is the
  /// file's native weight_bits. The file is loaded exactly once, here
  /// (FQBERT02 files are mmapped zero-copy); every worker shares the
  /// loaded instance. Returns false when the file cannot be loaded.
  bool register_file(const std::string& name, const std::string& path);

  /// Derive a `bits` tier for `name` from its default tier's engine
  /// (quantizer range rescaling, no float weights needed) and register
  /// it. False when the name is unknown or `bits` is out of [2, 8].
  bool register_derived(const std::string& name, int bits);

  /// Remove every tier of `name`. Existing shared_ptr holders keep the
  /// engines alive; only the name binding disappears. False when the
  /// name is unknown.
  bool unregister(const std::string& name);

  /// Remove one tier of `name`. When the default tier is removed, the
  /// lowest remaining tier becomes the default. False when (name,
  /// tier) is unknown.
  bool unregister_tier(const std::string& name, int bits);

  /// The shared engine instance at `bits` (0 = the name's default
  /// tier). nullptr when the name or tier is unknown — no implicit
  /// cross-tier fallback; that policy belongs to the router.
  std::shared_ptr<const core::FqBertModel> get(const std::string& name,
                                               int bits = 0) const;

  /// Default tier's weight_bits for `name` (0 when unknown).
  int default_tier(const std::string& name) const;

  /// Ascending list of registered tiers for `name`.
  std::vector<int> tiers(const std::string& name) const;

  /// Source path of a file-backed tier ("" for in-memory/derived tiers
  /// or unknown names). bits 0 = default tier.
  std::string source_path(const std::string& name, int bits = 0) const;

  bool contains(const std::string& name) const;
  bool contains(const std::string& name, int bits) const;
  std::vector<std::string> names() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FqBertModel> model;
    std::string path;  // empty for in-memory and derived entries
  };
  struct ModelEntry {
    int default_bits = 0;  // tier served when a request names no tier
    std::map<int, Entry> tiers;
  };

  /// Bind (name, bits); returns the displaced engine (possibly null)
  /// so the caller can drop it outside the lock.
  std::shared_ptr<const core::FqBertModel> bind(
      const std::string& name, int bits,
      std::shared_ptr<const core::FqBertModel> model, const std::string& path);

  mutable Mutex mu_;
  std::map<std::string, ModelEntry> entries_ GUARDED_BY(mu_);
};

}  // namespace fqbert::serve
