// Integer requantization: Eq. 5 of the paper.
//
//   y_I = (sum(a_I * w_I) + b_I) * sf,   sf = s_y / (s_a * s_w)
//
// sf is a positive real < 1 in practice; the paper stores it as a 32-bit
// fixed-point value. We represent it gemmlowp-style as a Q31 multiplier
// plus a right shift, so the whole requantization is one widening
// multiply and one rounding shift — exactly what the accelerator's
// "Quant" block (Fig. 2) does after the accumulator.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace fqbert::quant {

/// Saturate an int32/int64 value to signed k-bit (symmetric grid).
inline int32_t saturate_signed(int64_t v, int bits) {
  const int64_t q = (1ll << (bits - 1)) - 1;
  if (v > q) return static_cast<int32_t>(q);
  if (v < -q) return static_cast<int32_t>(-q);
  return static_cast<int32_t>(v);
}

inline int32_t saturate_unsigned(int64_t v, int bits) {
  const int64_t q = (1ll << bits) - 1;
  if (v > q) return static_cast<int32_t>(q);
  if (v < 0) return 0;
  return static_cast<int32_t>(v);
}

/// Rounding arithmetic right shift (round half away from zero).
inline int64_t rounding_shift_right(int64_t v, int shift) {
  if (shift <= 0) return v << (-shift);
  const int64_t half = 1ll << (shift - 1);
  if (v >= 0) return (v + half) >> shift;
  return -((-v + half) >> shift);
}

/// Branch-free rounding_shift_right for a known-positive shift with the
/// half constant hoisted (half must be 1 << (shift - 1)). Value-
/// identical: the arithmetic shift floors, and the sign-bit correction
/// (v >> 63 is -1 for negative v) turns the negative side's
/// floor((v + half) / 2^s) into the exact ceil((v - half) / 2^s) =
/// round-half-away-from-zero. Hot epilogue loops (requantize, int LN)
/// use this form because the sign branch above mispredicts on
/// mixed-sign accumulators and blocks vectorization.
inline int64_t rounding_shift_right_branchless(int64_t v, int shift,
                                               int64_t half) {
  return (v + half + (v >> 63)) >> shift;
}

/// Branch-free saturate_signed(v, 8) companion for the same hot loops.
inline int8_t clamp_i8(int64_t v) {
  v = v > 127 ? 127 : v;
  v = v < -127 ? -127 : v;
  return static_cast<int8_t>(v);
}

/// Fixed-point multiplier for a positive real factor.
struct Requantizer {
  int32_t multiplier = 0;  // Q31 mantissa in [2^30, 2^31)
  int shift = 31;          // total right shift after the widening multiply

  /// Build from a real factor m > 0:  m ~= multiplier * 2^-shift.
  static Requantizer from_scale(double m) {
    if (m <= 0.0) throw std::invalid_argument("requant scale must be > 0");
    int e = 0;
    const double f = std::frexp(m, &e);  // m = f * 2^e, f in [0.5, 1)
    Requantizer r;
    auto q31 = static_cast<int64_t>(std::nearbyint(f * (1ll << 31)));
    if (q31 == (1ll << 31)) {  // f rounded up to 1.0
      q31 >>= 1;
      ++e;
    }
    r.multiplier = static_cast<int32_t>(q31);
    r.shift = 31 - e;
    if (r.shift < 0 || r.shift > 62) {
      throw std::invalid_argument("requant scale out of representable range");
    }
    return r;
  }

  /// Apply to a 32-bit accumulator: round(acc * m) computed exactly in
  /// integer arithmetic.
  int32_t apply(int64_t acc) const {
    const int64_t prod = acc * static_cast<int64_t>(multiplier);
    return static_cast<int32_t>(rounding_shift_right(prod, shift));
  }

  /// Real factor represented (for tests / debugging).
  double effective_scale() const {
    return static_cast<double>(multiplier) / std::ldexp(1.0, shift);
  }
};

}  // namespace fqbert::quant
