// Fake-quantization hooks for quantization-aware training.
//
// These implement nn::TensorHook: forward applies quantize-dequantize on
// the real axis; gradients use the straight-through estimator. Weight
// hooks recompute the clip threshold from the live weights every forward
// (NO_CLIP: abs-max; CLIP: tuned percentile — Fig. 3); activation hooks
// track the scale with an EMA during training and freeze it for eval
// (Eq. 3). Optionally the scale itself is rounded to its 8-bit
// representation, which is the "scale" row of the Table II ablation.
#pragma once

#include "nn/module.h"
#include "quant/observer.h"
#include "quant/quantizer.h"

namespace fqbert::quant {

struct FakeQuantConfig {
  int bits = 8;
  ClipMode clip = ClipMode::kNone;
  double percentile = 0.997;   // used when clip == kPercentile
  bool quantize_scale = false; // round the scale to 8-bit repr (Table II)
};

/// Weight fake-quantizer: threshold recomputed from the tensor itself.
class WeightFakeQuant : public nn::TensorHook {
 public:
  explicit WeightFakeQuant(FakeQuantConfig config) : config_(config) {}

  Tensor apply(const Tensor& w) override {
    const double t = clip_threshold(w, config_.clip, config_.percentile);
    last_scale_ = scale_from_threshold(t, config_.bits);
    if (config_.quantize_scale) last_scale_ = quantize_scale_8bit(last_scale_);
    last_threshold_ = t;
    return fake_quantize_tensor(w, last_scale_, config_.bits);
  }

  // Weights use a pure straight-through estimator (mask of ones, the
  // Module default): clipped weights keep receiving gradient so they can
  // re-enter the representable range during training.

  double last_scale() const { return last_scale_; }
  double last_threshold() const { return last_threshold_; }
  const FakeQuantConfig& config() const { return config_; }

 private:
  FakeQuantConfig config_;
  double last_scale_ = 1.0;
  double last_threshold_ = 0.0;
};

/// Activation fake-quantizer with EMA-tracked range.
class ActFakeQuant : public nn::TensorHook {
 public:
  explicit ActFakeQuant(FakeQuantConfig config, double momentum = 0.95)
      : config_(config), observer_(momentum) {}

  /// In training mode the observer keeps updating; freeze for eval.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  Tensor apply(const Tensor& x) override {
    if (training_ || !observer_.initialized()) observer_.observe(x);
    last_scale_ = scale_from_threshold(observer_.value(), config_.bits);
    if (config_.quantize_scale) last_scale_ = quantize_scale_8bit(last_scale_);
    return fake_quantize_tensor(x, last_scale_, config_.bits);
  }

  /// STE with saturation masking: no gradient through clipped values.
  Tensor grad_mask(const Tensor& x) override {
    const float t = static_cast<float>(observer_.value());
    Tensor mask(x.shape());
    for (int64_t i = 0; i < x.numel(); ++i)
      mask[i] = std::fabs(x[i]) <= t ? 1.0f : 0.0f;
    return mask;
  }

  double last_scale() const { return last_scale_; }
  EmaObserver& observer() { return observer_; }
  const FakeQuantConfig& config() const { return config_; }

 private:
  FakeQuantConfig config_;
  EmaObserver observer_;
  bool training_ = true;
  double last_scale_ = 1.0;
};

/// Fake-quantizer with a fixed, data-independent grid. Used for softmax
/// probabilities (unsigned, range [0,1], scale 255) and LayerNorm
/// parameters (Q-format fixed point), where the hardware grid is known a
/// priori rather than calibrated.
class FixedGridFakeQuant : public nn::TensorHook {
 public:
  /// scale: codes = round(x*scale); limits are the code range.
  FixedGridFakeQuant(double scale, int32_t code_min, int32_t code_max)
      : scale_(scale), code_min_(code_min), code_max_(code_max) {}

  static FixedGridFakeQuant signed_bits(double scale, int bits) {
    const int32_t q = qmax_signed(bits);
    return FixedGridFakeQuant(scale, -q, q);
  }
  static FixedGridFakeQuant unsigned_bits(double scale, int bits) {
    return FixedGridFakeQuant(scale, 0, qmax_unsigned(bits));
  }

  Tensor apply(const Tensor& x) override {
    Tensor out(x.shape());
    for (int64_t i = 0; i < x.numel(); ++i) {
      const double c = std::clamp<double>(
          std::nearbyint(static_cast<double>(x[i]) * scale_), code_min_,
          code_max_);
      out[i] = static_cast<float>(c / scale_);
    }
    return out;
  }

  Tensor grad_mask(const Tensor& x) override {
    Tensor mask(x.shape());
    const double lo = code_min_ / scale_, hi = code_max_ / scale_;
    for (int64_t i = 0; i < x.numel(); ++i)
      mask[i] = (x[i] >= lo && x[i] <= hi) ? 1.0f : 0.0f;
    return mask;
  }

  double scale() const { return scale_; }

 private:
  double scale_;
  int32_t code_min_;
  int32_t code_max_;
};

/// Emulates the accelerator's LUT softmax (Sec. III-B) on the *float*
/// probabilities during QAT, so training sees the same discretization the
/// integer engine applies at inference:
///   n_i = round(255 * p_i / max_j p_j)   (8-bit quantized exp numerator,
///                                          since p_i/p_max = exp(x_i - m))
///   q_i = round(255 * n_i / sum_j n_j) / 255
class SoftmaxLutFakeQuant : public nn::TensorHook {
 public:
  /// Operates row-wise on a [rows, cols] probability matrix.
  Tensor apply(const Tensor& p) override {
    assert(p.rank() == 2);
    Tensor out(p.shape());
    const int64_t rows = p.dim(0), cols = p.dim(1);
    for (int64_t r = 0; r < rows; ++r) {
      const float* pr = p.row(r);
      float* qr = out.row(r);
      float pmax = pr[0];
      for (int64_t c = 1; c < cols; ++c) pmax = std::max(pmax, pr[c]);
      if (pmax <= 0.0f) {
        for (int64_t c = 0; c < cols; ++c) qr[c] = 0.0f;
        continue;
      }
      double sum = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        qr[c] = static_cast<float>(std::nearbyint(255.0 * pr[c] / pmax));
        sum += qr[c];
      }
      for (int64_t c = 0; c < cols; ++c)
        qr[c] = static_cast<float>(std::nearbyint(255.0 * qr[c] / sum) / 255.0);
    }
    return out;
  }
  // Straight-through gradient (default mask of ones): the LUT pipeline is
  // piecewise constant, so STE is the standard choice.
};

}  // namespace fqbert::quant
