// Symmetric linear quantization primitives (paper Section II, Eq. 1-3).
//
// Conventions follow the paper: the scale s maps real values to the
// integer grid, x_I = round(x * s), with s = (2^{k-1} - 1) / T for clip
// threshold T (Eq. 2). Symmetric quantization has no zero point, which is
// what makes the accelerator datapath simple (Sec. II-A: "more hardware
// friendly for the lack of zero-point").
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"

namespace fqbert::quant {

/// Clip-threshold selection for weights (Fig. 3: CLIP vs NO_CLIP).
enum class ClipMode {
  kNone,        // T = max|W| (NO_CLIP)
  kPercentile,  // T = percentile of |W| (CLIP, tuned)
};

/// Quantized-grid limits for a signed k-bit code: [-(2^{k-1}-1), 2^{k-1}-1].
/// The symmetric grid drops the most-negative code so negation is closed.
inline int32_t qmax_signed(int bits) {
  if (bits < 2 || bits > 32) throw std::invalid_argument("bits out of range");
  return static_cast<int32_t>((1u << (bits - 1)) - 1);
}

inline int32_t qmax_unsigned(int bits) {
  if (bits < 1 || bits > 31) throw std::invalid_argument("bits out of range");
  return static_cast<int32_t>((1u << bits) - 1);
}

/// Eq. 2: s = (2^{k-1} - 1) / T.  T must be positive.
inline double scale_from_threshold(double threshold, int bits) {
  if (threshold <= 0.0) return 1.0;  // degenerate tensor: identity scale
  return static_cast<double>(qmax_signed(bits)) / threshold;
}

/// Quantize one value to the signed k-bit grid: clamp + round(x*s).
inline int32_t quantize_value(float x, double scale, int bits) {
  const int32_t q = qmax_signed(bits);
  const double v = std::nearbyint(static_cast<double>(x) * scale);
  return static_cast<int32_t>(std::clamp<double>(v, -q, q));
}

inline float dequantize_value(int32_t xi, double scale) {
  return static_cast<float>(static_cast<double>(xi) / scale);
}

/// Fake quantization of one value (quantize-dequantize on the real axis).
inline float fake_quantize_value(float x, double scale, int bits) {
  return dequantize_value(quantize_value(x, scale, bits), scale);
}

/// abs-max of a tensor (NO_CLIP threshold).
float abs_max(const Tensor& t);

/// Percentile of |t| in [0,1]; 1.0 degenerates to abs_max.
float abs_percentile(const Tensor& t, double q);

/// Threshold under the given clip mode.
float clip_threshold(const Tensor& t, ClipMode mode, double percentile);

/// Quantize a whole tensor to int32 codes (caller narrows).
void quantize_tensor(const Tensor& src, double scale, int bits,
                     Int32Tensor& dst);

/// Quantize to int8 storage (bits <= 8).
void quantize_tensor_i8(const Tensor& src, double scale, int bits,
                        Int8Tensor& dst);

/// Dequantize int8 codes back to float.
void dequantize_tensor(const Int8Tensor& src, double scale, Tensor& dst);

/// Fake-quantize a whole tensor (QAT forward).
Tensor fake_quantize_tensor(const Tensor& src, double scale, int bits);

// ---------------------------------------------------------------------------
// Scale-factor quantization (Table II "scale" ablation).
//
// The paper quantizes the scale factors themselves to 8 bits: we
// represent a positive real scale as an 8-bit mantissa times a power of
// two, the form a shift-and-multiply datapath consumes.
// ---------------------------------------------------------------------------

/// Round a positive scale to an 8-bit mantissa * 2^e representation.
double quantize_scale_8bit(double s);

}  // namespace fqbert::quant
