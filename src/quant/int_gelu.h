// Integer GELU via a 256-entry lookup table.
//
// The paper's FFN1 stage ends in GELU (Fig. 1). On the accelerator every
// intermediate is 8-bit, so GELU becomes a direct code-to-code table: for
// each of the 256 possible int8 input codes (scale s_in) the table holds
// the int8 output code (scale s_out). This mirrors the softmax LUT
// strategy of Sec. III-B.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "quant/fixed_point.h"

namespace fqbert::quant {

class IntGelu {
 public:
  IntGelu(double input_scale, double output_scale) {
    for (int code = -128; code <= 127; ++code) {
      const double x = static_cast<double>(code) / input_scale;
      const double y = gelu_reference(x);
      table_[static_cast<size_t>(code + 128)] = static_cast<int8_t>(
          saturate_signed(static_cast<int64_t>(std::nearbyint(y * output_scale)), 8));
    }
  }

  int8_t apply(int8_t x) const {
    return table_[static_cast<size_t>(static_cast<int>(x) + 128)];
  }

  static double gelu_reference(double x) {
    constexpr double kSqrt2OverPi = 0.7978845608028654;
    constexpr double kCoeff = 0.044715;
    const double u = kSqrt2OverPi * (x + kCoeff * x * x * x);
    return 0.5 * x * (1.0 + std::tanh(u));
  }

 private:
  std::array<int8_t, 256> table_{};
};

}  // namespace fqbert::quant
