#include "quant/quantizer.h"

namespace fqbert::quant {

float abs_max(const Tensor& t) {
  float m = 0.0f;
  for (int64_t i = 0; i < t.numel(); ++i) m = std::max(m, std::fabs(t[i]));
  return m;
}

float abs_percentile(const Tensor& t, double q) {
  if (t.numel() == 0) return 0.0f;
  if (q >= 1.0) return abs_max(t);
  std::vector<float> mags(static_cast<size_t>(t.numel()));
  for (int64_t i = 0; i < t.numel(); ++i)
    mags[static_cast<size_t>(i)] = std::fabs(t[i]);
  const auto k = static_cast<size_t>(
      std::clamp<double>(q * static_cast<double>(mags.size() - 1), 0.0,
                         static_cast<double>(mags.size() - 1)));
  std::nth_element(mags.begin(), mags.begin() + static_cast<int64_t>(k),
                   mags.end());
  return mags[k];
}

float clip_threshold(const Tensor& t, ClipMode mode, double percentile) {
  switch (mode) {
    case ClipMode::kNone:
      return abs_max(t);
    case ClipMode::kPercentile:
      return abs_percentile(t, percentile);
  }
  return abs_max(t);
}

void quantize_tensor(const Tensor& src, double scale, int bits,
                     Int32Tensor& dst) {
  if (!dst.same_shape(Int32Tensor(src.shape())))
    dst = Int32Tensor(src.shape());
  for (int64_t i = 0; i < src.numel(); ++i)
    dst[i] = quantize_value(src[i], scale, bits);
}

void quantize_tensor_i8(const Tensor& src, double scale, int bits,
                        Int8Tensor& dst) {
  if (bits > 8) throw std::invalid_argument("i8 storage needs bits <= 8");
  if (!dst.same_shape(Int8Tensor(src.shape()))) dst = Int8Tensor(src.shape());
  for (int64_t i = 0; i < src.numel(); ++i)
    dst[i] = static_cast<int8_t>(quantize_value(src[i], scale, bits));
}

void dequantize_tensor(const Int8Tensor& src, double scale, Tensor& dst) {
  if (!dst.same_shape(Tensor(src.shape()))) dst = Tensor(src.shape());
  for (int64_t i = 0; i < src.numel(); ++i)
    dst[i] = dequantize_value(src[i], scale);
}

Tensor fake_quantize_tensor(const Tensor& src, double scale, int bits) {
  Tensor out(src.shape());
  for (int64_t i = 0; i < src.numel(); ++i)
    out[i] = fake_quantize_value(src[i], scale, bits);
  return out;
}

double quantize_scale_8bit(double s) {
  if (s <= 0.0) return s;
  int e = 0;
  const double f = std::frexp(s, &e);  // s = f * 2^e, f in [0.5, 1)
  // 8-bit mantissa: f * 256 rounded, i.e. mantissa in [128, 256].
  const double mant = std::nearbyint(f * 256.0);
  return std::ldexp(mant / 256.0, e);
}

}  // namespace fqbert::quant
