#include "quant/int_layernorm.h"

#include <cmath>
#include <stdexcept>

namespace fqbert::quant {

uint32_t isqrt64(uint64_t v) {
  // Classic bit-serial (shift-subtract) integer square root: exact
  // floor(sqrt(v)) using only shifts, adds and compares — the form an
  // FPGA LN core implements.
  uint64_t rem = 0, root = 0;
  for (int i = 31; i >= 0; --i) {
    rem = (rem << 2) | ((v >> (2 * i)) & 3u);
    root <<= 1;
    const uint64_t trial = (root << 1) | 1u;
    if (trial <= rem) {
      rem -= trial;
      root |= 1u;
    }
  }
  return static_cast<uint32_t>(root);
}

IntLayerNorm::IntLayerNorm(const std::vector<float>& gamma,
                           const std::vector<float>& beta,
                           double output_scale)
    : output_scale_(output_scale) {
  if (gamma.size() != beta.size() || gamma.empty())
    throw std::invalid_argument("gamma/beta size mismatch");
  gamma_q_.resize(gamma.size());
  beta_q_.resize(beta.size());
  const double gamma_scale = static_cast<double>(1 << kGammaFracBits);
  for (size_t i = 0; i < gamma.size(); ++i) {
    gamma_q_[i] = static_cast<int8_t>(
        saturate_signed(static_cast<int64_t>(std::nearbyint(
                            static_cast<double>(gamma[i]) * gamma_scale)),
                        8));
    beta_q_[i] = static_cast<int32_t>(
        std::nearbyint(static_cast<double>(beta[i]) * output_scale));
  }
  // xhat*gamma is in Q(kXhatFracBits + kGammaFracBits); map to the s_y grid.
  out_requant_ = Requantizer::from_scale(
      output_scale / std::ldexp(1.0, kXhatFracBits + kGammaFracBits));
}

void IntLayerNorm::apply_row(const int32_t* x, int8_t* out) const {
  const int64_t h = features();

  int64_t sum = 0;
  for (int64_t c = 0; c < h; ++c) sum += x[c];
  // Round-half-away-from-zero integer mean.
  const int64_t mu = sum >= 0 ? (sum + h / 2) / h : -((-sum + h / 2) / h);

  int64_t var_acc = 0;
  for (int64_t c = 0; c < h; ++c) {
    const int64_t d = x[c] - mu;
    var_acc += d * d;
  }
  const int64_t var = (var_acc + h / 2) / h;

  if (var == 0) {
    // Constant row: xhat is zero everywhere; emit beta only.
    for (int64_t c = 0; c < h; ++c)
      out[c] = static_cast<int8_t>(saturate_signed(beta_q_[static_cast<size_t>(c)], 8));
    return;
  }

  // sigma * 2^(kInvStdFracBits/2)
  const uint32_t s =
      isqrt64(static_cast<uint64_t>(var) << kInvStdFracBits);
  // inv_std = 2^kInvStdFracBits / sigma  (Q(kInvStdFracBits))
  const int64_t inv_std =
      ((1ll << (kInvStdFracBits + kInvStdFracBits / 2)) + s / 2) / s;

  // Branch-free per-element loop, value-identical to
  // rounding_shift_right / Requantizer::apply / saturate_signed.
  // Mixed-sign rows make the generic helpers' sign branches mispredict,
  // and LN runs once per residual row on the serving hot path.
  constexpr int kXhatShift = kInvStdFracBits - kXhatFracBits;
  static_assert(kXhatShift > 0);
  constexpr int64_t kXhatHalf = 1ll << (kXhatShift - 1);
  const int64_t rq_mult = out_requant_.multiplier;
  const int rq_shift = out_requant_.shift;
  const int64_t rq_half = rq_shift > 0 ? (1ll << (rq_shift - 1)) : 0;
  for (int64_t c = 0; c < h; ++c) {
    const int64_t d = x[c] - mu;
    // xhat in Q(kXhatFracBits).
    const int64_t xhat = rounding_shift_right_branchless(
        d * inv_std, kXhatShift, kXhatHalf);
    const int64_t prod = xhat * gamma_q_[static_cast<size_t>(c)];
    const int64_t rq =
        rq_shift > 0
            ? rounding_shift_right_branchless(prod * rq_mult, rq_shift,
                                              rq_half)
            : prod * rq_mult;
    out[c] = clamp_i8(rq + beta_q_[static_cast<size_t>(c)]);
  }
}

void IntLayerNorm::apply(const std::vector<int32_t>& x, std::vector<int8_t>& out,
                         int64_t rows) const {
  const int64_t h = features();
  out.resize(static_cast<size_t>(rows * h));
  for (int64_t r = 0; r < rows; ++r)
    apply_row(x.data() + r * h, out.data() + r * h);
}

}  // namespace fqbert::quant
