// Integer-only softmax with a 256-entry exponential lookup table
// (paper Sec. III-B, "Softmax Core").
//
// Softmax is shift-invariant, so every element first has the row maximum
// subtracted; the exponential argument is then in (-inf, 0] and exp of it
// in (0, 1], which is why a small 8-bit table suffices ("as we quantize
// exp(x_i) to 8-bit, only 256 sampling points are needed").
//
// Pipeline per row of the (integer) score matrix:
//   d_i   = max_j(x_j) - x_i                (non-negative integer)
//   idx_i = round(d_i / (s_x * step))       (integer requant, clamped 255)
//   n_i   = LUT[idx_i] = round(255*exp(-idx_i*step))   (8-bit numerator)
//   p_i   = round(255 * n_i / sum_j n_j)    (8-bit probability, scale 255)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "quant/fixed_point.h"
#include "quant/quantizer.h"

namespace fqbert::quant {

class IntSoftmax {
 public:
  static constexpr int kLutSize = 256;
  /// exp(-kRange) is below half a code of an 8-bit table.
  static constexpr double kRange = 6.0;
  static constexpr double kStep = kRange / (kLutSize - 1);

  /// input_scale: the scale of the integer scores (x = x_I / input_scale).
  explicit IntSoftmax(double input_scale);

  /// Row-wise integer softmax. x: int32 scores [rows*cols] row-major.
  /// out: uint8 probabilities stored as int32 in [0, 255], scale 255
  /// (p_real ~= out/255).
  void apply_row(const int32_t* x, int32_t* out, int64_t cols) const;
  void apply(const std::vector<int32_t>& x, std::vector<int32_t>& out,
             int64_t rows, int64_t cols) const;

  /// Output scale: p_real = p_I / output_scale().
  static double output_scale() { return 255.0; }

  const std::array<uint8_t, kLutSize>& lut() const { return lut_; }
  const Requantizer& index_requant() const { return index_requant_; }

 private:
  std::array<uint8_t, kLutSize> lut_{};
  Requantizer index_requant_;  // maps d_I to a LUT index
};

/// Float reference with the same LUT discretization disabled — used by
/// tests to bound the integer kernel's error.
void softmax_reference(const float* x, float* out, int64_t cols);

}  // namespace fqbert::quant
