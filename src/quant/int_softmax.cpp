#include "quant/int_softmax.h"

#include <algorithm>
#include <cmath>

namespace fqbert::quant {

IntSoftmax::IntSoftmax(double input_scale) {
  for (int i = 0; i < kLutSize; ++i) {
    const double v = 255.0 * std::exp(-static_cast<double>(i) * kStep);
    lut_[static_cast<size_t>(i)] =
        static_cast<uint8_t>(std::clamp<double>(std::nearbyint(v), 0.0, 255.0));
  }
  // idx = d_I / (input_scale * kStep): one fixed-point multiply.
  index_requant_ = Requantizer::from_scale(1.0 / (input_scale * kStep));
}

void IntSoftmax::apply_row(const int32_t* x, int32_t* out,
                           int64_t cols) const {
  int32_t mx = x[0];
  for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);

  int64_t sum = 0;
  for (int64_t c = 0; c < cols; ++c) {
    const int64_t d = static_cast<int64_t>(mx) - x[c];  // >= 0
    int32_t idx = index_requant_.apply(d);
    idx = std::min<int32_t>(idx, kLutSize - 1);
    out[c] = lut_[static_cast<size_t>(idx)];
    sum += out[c];
  }
  // sum >= 255 because the max element maps to LUT[0] = 255.
  // p = round(255 * n / sum) = floor((510 * n + sum) / (2 * sum)),
  // all-integer. A hardware divider per element is the naive form; here
  // the row-invariant divisor D = 2*sum is replaced by its exact
  // round-up reciprocal (Granlund–Montgomery): with
  // m = floor(2^42 / D) + 1, floor(num * m / 2^42) == floor(num / D)
  // for every num < 2^42 / D. num <= 510*255 + sum and D = 2*sum, so
  // the bound holds whenever D <= 2^21 (rows up to ~4096 columns);
  // longer rows take the division path.
  const uint64_t d2 = 2 * static_cast<uint64_t>(sum);
  if (d2 <= (1ull << 21)) {
    const uint64_t m = ((1ull << 42) / d2) + 1;
    for (int64_t c = 0; c < cols; ++c) {
      const uint64_t num =
          510 * static_cast<uint64_t>(out[c]) + static_cast<uint64_t>(sum);
      out[c] = static_cast<int32_t>((num * m) >> 42);
    }
  } else {
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = static_cast<int32_t>(
          (static_cast<int64_t>(out[c]) * 255 * 2 + sum) / (2 * sum));
    }
  }
}

void IntSoftmax::apply(const std::vector<int32_t>& x, std::vector<int32_t>& out,
                       int64_t rows, int64_t cols) const {
  out.resize(static_cast<size_t>(rows * cols));
  for (int64_t r = 0; r < rows; ++r)
    apply_row(x.data() + r * cols, out.data() + r * cols, cols);
}

void softmax_reference(const float* x, float* out, int64_t cols) {
  float mx = x[0];
  for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, x[c]);
  double sum = 0.0;
  for (int64_t c = 0; c < cols; ++c) {
    out[c] = std::exp(x[c] - mx);
    sum += out[c];
  }
  for (int64_t c = 0; c < cols; ++c)
    out[c] = static_cast<float>(out[c] / sum);
}

}  // namespace fqbert::quant
