// Integer-only LayerNorm (paper Sec. III-B, "LN Core").
//
// LayerNorm's normalization term (x - mu) / sigma is scale-invariant: mu
// and sigma carry the same quantization scale as x, so the ratio needs no
// scale at all. The kernel therefore works directly on the int8/int32
// codes:
//
//   mu_I    = round(sum x_I / H)
//   var_I   = sum (x_I - mu_I)^2 / H
//   inv_std = 2^20 / isqrt(var_I << 20)     (Q20 fixed point, integer
//                                            Newton/bit-serial sqrt)
//   xhat    = (x_I - mu_I) * inv_std >> 10  (Q10)
//   y_I     = requant(xhat * gamma_q6) + beta_I, saturated to 8 bits
//
// gamma is held in Q6 8-bit fixed point and beta pre-quantized to the
// output scale — "parameters of layer normalization to 8-bit fixed-point
// values" (Sec. II-B).
#pragma once

#include <cstdint>
#include <vector>

#include "quant/fixed_point.h"
#include "quant/quantizer.h"

namespace fqbert::quant {

/// Bit-serial integer square root of a 64-bit value (floor(sqrt(v))).
uint32_t isqrt64(uint64_t v);

class IntLayerNorm {
 public:
  static constexpr int kGammaFracBits = 6;   // gamma in Q1.6
  static constexpr int kInvStdFracBits = 20; // 1/sigma in Q20
  static constexpr int kXhatFracBits = 10;   // normalized value in Q10

  /// gamma/beta: float parameters; output_scale: s_y of the int8 output.
  IntLayerNorm(const std::vector<float>& gamma, const std::vector<float>& beta,
               double output_scale);

  /// Normalize one row of H int32 codes into int8 codes (scale s_y).
  /// The input scale is irrelevant (scale invariance) as long as the
  /// codes are not saturated.
  void apply_row(const int32_t* x, int8_t* out) const;

  void apply(const std::vector<int32_t>& x, std::vector<int8_t>& out,
             int64_t rows) const;

  int64_t features() const { return static_cast<int64_t>(gamma_q_.size()); }
  double output_scale() const { return output_scale_; }
  const std::vector<int8_t>& gamma_q() const { return gamma_q_; }
  const std::vector<int32_t>& beta_q() const { return beta_q_; }

 private:
  std::vector<int8_t> gamma_q_;  // Q6 codes
  std::vector<int32_t> beta_q_;  // beta * s_y
  Requantizer out_requant_;      // maps xhat*gamma (Q16) to the s_y grid
  double output_scale_;
};

}  // namespace fqbert::quant
