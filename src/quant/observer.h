// Range observers for activation quantization.
//
// The paper (Eq. 3) uses an exponential moving average of max|A| gathered
// during training to fix the activation scale for inference.
#pragma once

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"

namespace fqbert::quant {

/// EMA of the per-batch abs-max (Eq. 3).
class EmaObserver {
 public:
  explicit EmaObserver(double momentum = 0.95) : momentum_(momentum) {}

  void observe(const Tensor& t) {
    const double m = static_cast<double>(abs_max(t));
    if (!initialized_) {
      ema_ = m;
      initialized_ = true;
    } else {
      ema_ = momentum_ * ema_ + (1.0 - momentum_) * m;
    }
  }

  bool initialized() const { return initialized_; }
  double value() const { return ema_; }
  void reset() { initialized_ = false; ema_ = 0.0; }

  /// Force a range (used when loading calibrated models).
  void set_value(double v) {
    ema_ = v;
    initialized_ = true;
  }

 private:
  double momentum_;
  double ema_ = 0.0;
  bool initialized_ = false;
};

/// Running min/max (kept for calibration-style PTQ experiments).
class MinMaxObserver {
 public:
  void observe(const Tensor& t) {
    value_ = std::max(value_, static_cast<double>(abs_max(t)));
    initialized_ = true;
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; initialized_ = false; }

 private:
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace fqbert::quant
