// Sub-byte weight packing and model-size accounting.
//
// FQ-BERT stores 4-bit weights two-per-byte; the compression ratio in
// Table I (7.94x) is the full-model byte count of the float model over
// the quantized model (4-bit encoder weights, 8-bit embeddings and LN/
// softmax parameters, 32-bit biases, 8-bit scales).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fqbert::quant {

/// Pack int4 codes (each in [-8, 7], stored in int8) two per byte:
/// element 2i in the low nibble, 2i+1 in the high nibble.
inline std::vector<uint8_t> pack_int4(const std::vector<int8_t>& codes) {
  std::vector<uint8_t> out((codes.size() + 1) / 2, 0);
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] < -8 || codes[i] > 7)
      throw std::invalid_argument("code out of int4 range");
    const uint8_t nibble = static_cast<uint8_t>(codes[i]) & 0x0Fu;
    if (i % 2 == 0)
      out[i / 2] |= nibble;
    else
      out[i / 2] |= static_cast<uint8_t>(nibble << 4);
  }
  return out;
}

/// Unpack to int8 codes (sign-extended nibbles).
inline std::vector<int8_t> unpack_int4(const std::vector<uint8_t>& bytes,
                                       size_t count) {
  if (count > bytes.size() * 2)
    throw std::invalid_argument("count exceeds packed data");
  std::vector<int8_t> out(count);
  for (size_t i = 0; i < count; ++i) {
    uint8_t nibble = (i % 2 == 0) ? (bytes[i / 2] & 0x0Fu)
                                  : static_cast<uint8_t>(bytes[i / 2] >> 4);
    // Sign-extend the 4-bit value.
    out[i] = static_cast<int8_t>(static_cast<int8_t>(nibble << 4) >> 4);
  }
  return out;
}

/// Byte-size bookkeeping for compression-ratio reporting.
struct SizeReport {
  int64_t float_bytes = 0;
  int64_t quant_bytes = 0;

  void add(int64_t elements, int float_bits, int quant_bits) {
    float_bytes += elements * float_bits / 8;
    // Sub-byte elements are packed; round the total up to whole bytes.
    quant_bytes += (elements * quant_bits + 7) / 8;
  }

  double compression_ratio() const {
    return quant_bytes == 0
               ? 0.0
               : static_cast<double>(float_bytes) /
                     static_cast<double>(quant_bytes);
  }
};

}  // namespace fqbert::quant
