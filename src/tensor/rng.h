// Deterministic random number generation.
//
// Every stochastic component in the repository (weight init, dataset
// synthesis, dropout-free training order shuffles) draws from an
// explicitly seeded Rng so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace fqbert {

/// Seeded pseudo-random source; thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal.
  double normal() { return normal_(engine_); }

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool flip(double p_true) { return uniform() < p_true; }

  /// Pick one element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& pool) {
    return pool[static_cast<size_t>(randint(0, static_cast<int64_t>(pool.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(randint(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Split off an independent stream (for parallel-safe sub-generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace fqbert
