// Minimal dense tensor substrate for the FQ-BERT reproduction.
//
// Design goals:
//  * contiguous row-major storage, value semantics, no hidden sharing;
//  * templated on element type so the same container serves float
//    activations, int8 quantized tensors and int32 accumulators;
//  * bounds-checked element access in debug builds, raw pointers for
//    hot loops.
//
// Higher-level linear algebra lives in tensor_ops.h.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fqbert {

/// Shape of a tensor; dimensions are non-negative.
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (empty shape => scalar => 1).
inline int64_t shape_numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

/// Human-readable "[a, b, c]" form, used in error messages.
inline std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

/// Dense row-major tensor with value semantics.
template <typename T>
class TensorT {
 public:
  using value_type = T;

  TensorT() = default;

  explicit TensorT(Shape shape)
      : shape_(std::move(shape)), data_(static_cast<size_t>(shape_numel(shape_))) {}

  TensorT(Shape shape, T fill_value)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_numel(shape_)), fill_value) {}

  TensorT(Shape shape, std::vector<T> values)
      : shape_(std::move(shape)), data_(std::move(values)) {
    if (static_cast<int64_t>(data_.size()) != shape_numel(shape_)) {
      throw std::invalid_argument("tensor data size does not match shape " +
                                  shape_to_string(shape_));
    }
  }

  const Shape& shape() const { return shape_; }
  int64_t dim(size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  T& operator[](int64_t i) {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  const T& operator[](int64_t i) const {
    assert(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D access: tensor must be rank 2.
  T& at(int64_t r, int64_t c) {
    assert(rank() == 2);
    assert(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  const T& at(int64_t r, int64_t c) const {
    return const_cast<TensorT*>(this)->at(r, c);
  }

  /// 3-D access: tensor must be rank 3.
  T& at(int64_t i, int64_t j, int64_t k) {
    assert(rank() == 3);
    assert(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
           k < shape_[2]);
    return data_[static_cast<size_t>((i * shape_[1] + j) * shape_[2] + k)];
  }
  const T& at(int64_t i, int64_t j, int64_t k) const {
    return const_cast<TensorT*>(this)->at(i, j, k);
  }

  /// Pointer to the start of row r of a rank-2 tensor.
  T* row(int64_t r) {
    assert(rank() == 2);
    return data_.data() + static_cast<size_t>(r * shape_[1]);
  }
  const T* row(int64_t r) const { return const_cast<TensorT*>(this)->row(r); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reinterpret with a new shape of equal element count.
  TensorT reshaped(Shape new_shape) const {
    if (shape_numel(new_shape) != numel()) {
      throw std::invalid_argument("reshape from " + shape_to_string(shape_) +
                                  " to " + shape_to_string(new_shape) +
                                  " changes element count");
    }
    TensorT out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
  }

  bool same_shape(const TensorT& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using Int8Tensor = TensorT<int8_t>;
using Int32Tensor = TensorT<int32_t>;

}  // namespace fqbert
