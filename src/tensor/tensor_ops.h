// Linear-algebra and elementwise kernels over TensorT.
//
// All matmul variants needed by forward *and* backward passes are
// provided explicitly (A·B, A·Bᵀ, Aᵀ·B) so the NN substrate never has to
// materialize transposed copies. Kernels are cache-blocked but
// deliberately dependency-free; they are also the float baseline against
// which the integer kernels in src/quant are benchmarked.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fqbert {

// ---------------------------------------------------------------------------
// Matrix products. All operands are rank-2.
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n]  (accumulate==false overwrites C).
inline void matmul(const Tensor& a, const Tensor& b, Tensor& c,
                   bool accumulate = false) {
  assert(a.rank() == 2 && b.rank() == 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == k);
  if (!c.same_shape(Tensor(Shape{m, n}))) c = Tensor(Shape{m, n});
  if (!accumulate) c.fill(0.0f);
  constexpr int64_t kBlock = 64;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t p0 = 0; p0 < k; p0 += kBlock) {
      const int64_t p1 = std::min(p0 + kBlock, k);
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (int64_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = b.row(p);
          for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

/// C[m,n] = A[m,k] * B[n,k]ᵀ.
inline void matmul_bt(const Tensor& a, const Tensor& b, Tensor& c,
                      bool accumulate = false) {
  assert(a.rank() == 2 && b.rank() == 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  assert(b.dim(1) == k);
  if (!c.same_shape(Tensor(Shape{m, n}))) c = Tensor(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float acc = accumulate ? crow[j] : 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

/// C[k,n] = A[m,k]ᵀ * B[m,n].
inline void matmul_at(const Tensor& a, const Tensor& b, Tensor& c,
                      bool accumulate = false) {
  assert(a.rank() == 2 && b.rank() == 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  assert(b.dim(0) == m);
  if (!c.same_shape(Tensor(Shape{k, n}))) c = Tensor(Shape{k, n});
  if (!accumulate) c.fill(0.0f);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c.row(p);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise / reduction helpers.
// ---------------------------------------------------------------------------

inline void add_inplace(Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

inline void sub_inplace(Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  for (int64_t i = 0; i < a.numel(); ++i) a[i] -= b[i];
}

inline void mul_inplace(Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= b[i];
}

inline void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

/// a += s * b  (axpy).
inline void axpy(Tensor& a, float s, const Tensor& b) {
  assert(a.same_shape(b));
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += s * b[i];
}

/// Add a bias row vector to every row of a rank-2 tensor.
inline void add_row_bias(Tensor& a, const Tensor& bias) {
  assert(a.rank() == 2 && bias.numel() == a.dim(1));
  for (int64_t r = 0; r < a.dim(0); ++r) {
    float* arow = a.row(r);
    for (int64_t c = 0; c < a.dim(1); ++c) arow[c] += bias[c];
  }
}

inline float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

inline float sum(const Tensor& a) {
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

inline float mean(const Tensor& a) {
  return a.numel() == 0 ? 0.0f : sum(a) / static_cast<float>(a.numel());
}

/// Index of the maximum element in a contiguous span.
inline int64_t argmax(const float* v, int64_t n) {
  int64_t best = 0;
  for (int64_t i = 1; i < n; ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

/// Frobenius-norm distance, used in tests and gradient checks.
inline double l2_distance(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

/// Largest absolute elementwise difference.
inline double max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.same_shape(b));
  double m = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  return m;
}

// ---------------------------------------------------------------------------
// Initializers.
// ---------------------------------------------------------------------------

inline void fill_normal(Tensor& t, Rng& rng, float mean = 0.0f,
                        float stddev = 1.0f) {
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(mean, stddev));
}

inline void fill_uniform(Tensor& t, Rng& rng, float lo, float hi) {
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.uniform(lo, hi));
}

/// Xavier/Glorot init for a [out, in] weight matrix.
inline void fill_xavier(Tensor& w, Rng& rng) {
  assert(w.rank() == 2);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(w.dim(0) + w.dim(1)));
  fill_uniform(w, rng, -bound, bound);
}

}  // namespace fqbert
