#include "platform/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fqbert::platform {

MappedFile::~MappedFile() { close(); }

bool MappedFile::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    error_ = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    error_ = "cannot stat " + path + ": " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  const auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap(0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    data_ = reinterpret_cast<const uint8_t*>(&size_);
    size_ = 0;
    return true;
  }
  // MAP_SHARED on a read-only mapping: the pages are the page cache's,
  // shared physically across every process mapping this file.
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped == MAP_FAILED) {
    error_ = "cannot mmap " + path + ": " + std::strerror(errno);
    return false;
  }
  data_ = static_cast<const uint8_t*>(mapped);
  size_ = size;
  return true;
}

void MappedFile::close() {
  if (data_ != nullptr && size_ > 0)
    ::munmap(const_cast<uint8_t*>(data_), size_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace fqbert::platform
