// Analytical CPU/GPU baseline models for the Table IV comparison.
//
// The paper measured an Intel i7-8700 (PyTorch, fp32) and an NVIDIA K80
// (CUDA 10.1), batch size 1, sequence length 128. Neither device is
// available offline, so each baseline is a peak-throughput x achieved-
// efficiency model; the efficiency factors are the *only* calibrated
// knobs and correspond to typical batch-1 transformer inference
// utilization on those platforms.
#pragma once

#include <string>

#include "nn/bert.h"

namespace fqbert::platform {

/// FLOPs of one batch-1 BERT inference (2 FLOPs per MAC), matmuls only —
/// the >20 GFLOP figure the paper quotes.
inline double bert_flops(const nn::BertConfig& c, int64_t seq_len) {
  const double s = static_cast<double>(seq_len);
  const double h = static_cast<double>(c.hidden);
  const double f = static_cast<double>(c.ffn_dim);
  const double per_layer =
      2.0 * (4.0 * s * h * h      // QKV + output projections
             + 2.0 * s * s * h    // QK^T and Attn*V (all heads)
             + 2.0 * s * h * f);  // FFN
  return per_layer * static_cast<double>(c.num_layers) +
         2.0 * (h * h + h * c.num_classes);  // pooler + classifier
}

struct PlatformModel {
  std::string name;
  double peak_gflops = 0.0;
  double efficiency = 1.0;  // achieved fraction of peak at batch 1
  double power_w = 0.0;
  double fixed_overhead_ms = 0.0;  // framework / kernel-launch overhead

  double latency_ms(double flops) const {
    return flops / (peak_gflops * 1e9 * efficiency) * 1e3 +
           fixed_overhead_ms;
  }
  double fps(double flops) const { return 1000.0 / latency_ms(flops); }
  double fps_per_w(double flops) const { return fps(flops) / power_w; }

  /// Intel Core i7-8700: 6 cores x 3.2 GHz x 32 fp32 FLOP/cycle (2x
  /// AVX2 FMA ports). Efficiency calibrated to PyTorch fp32 batch-1
  /// encoder inference.
  static PlatformModel cpu_i7_8700() {
    PlatformModel p;
    p.name = "CPU(i7-8700)";
    p.peak_gflops = 6 * 3.2 * 32;  // 614.4
    p.efficiency = 0.255;
    p.power_w = 65.0;  // TDP, as the paper reports
    p.fixed_overhead_ms = 1.0;
    return p;
  }

  /// NVIDIA K80 (one GK210 die, as allocated by CUDA): ~4.37 TFLOPS
  /// fp32 peak. Batch-1 transformer kernels reach a small fraction of
  /// peak; overhead covers kernel launches for ~150 ops.
  static PlatformModel gpu_k80() {
    PlatformModel p;
    p.name = "GPU(K80)";
    p.peak_gflops = 4370.0;
    p.efficiency = 0.195;
    p.power_w = 143.0;  // paper's measured board power
    p.fixed_overhead_ms = 1.2;
    return p;
  }
};

}  // namespace fqbert::platform
