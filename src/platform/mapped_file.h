// Read-only memory-mapped file. The engine loader uses it for
// zero-copy FQBERT02 loads: the weight arrays in the file are already
// in the panel kernel's resident layout, so the engine's weight views
// can point straight into the mapping. PROT_READ + MAP_SHARED means
// the pages live in the page cache once per FILE, not once per
// process — N server replicas loading the same engine share one
// physical copy, and a hot LOAD costs page faults, not read+widen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fqbert::platform {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only. False on open/stat/mmap failure (error()
  /// explains); an empty file maps successfully with size() == 0.
  bool open(const std::string& path);
  void close();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }
  const std::string& error() const { return error_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string error_;
};

}  // namespace fqbert::platform
