// Clang thread-safety-analysis vocabulary for the serving stack, plus
// the annotated Mutex / MutexLock wrappers the stack locks with.
//
// Every mutex-protected member in src/serve is declared GUARDED_BY its
// mutex and every lock-assuming helper carries REQUIRES, so a
//     clang++ -Wthread-safety -Werror
// build (the `static-analysis` CI job) proves each lock-protection
// invariant at compile time: a member read outside its lock is a build
// break, not a latent race. Under GCC (which has no thread-safety
// attributes) every macro expands to nothing and Mutex degrades to a
// plain std::mutex wrapper, so the annotations cost non-clang builds
// nothing.
//
// The macro names follow the Clang documentation's capability spelling
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); they are
// #ifndef-guarded so a TU that already picked up another project's
// copies keeps compiling.
//
// Analysis rules of thumb used across src/serve:
//   * members: `T x_ GUARDED_BY(mu_);`
//   * private helpers called with the lock held: `void f() REQUIRES(mu_);`
//   * public entry points that take the lock themselves need no
//     annotation — MutexLock's ACQUIRE/RELEASE tells the analysis.
//   * condition-variable waits use MutexLock::native(); wait PREDICATES
//     must not be lambdas touching guarded members (the analysis treats
//     a lambda body as an unannotated function), so guarded-state waits
//     are written as explicit loops around cv.wait_*.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FQBERT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FQBERT_THREAD_ANNOTATION
#define FQBERT_THREAD_ANNOTATION(x)  // not Clang: annotations vanish
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) FQBERT_THREAD_ANNOTATION(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY FQBERT_THREAD_ANNOTATION(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) FQBERT_THREAD_ANNOTATION(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) FQBERT_THREAD_ANNOTATION(pt_guarded_by(x))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) FQBERT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) FQBERT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  FQBERT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) FQBERT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) FQBERT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) FQBERT_THREAD_ANNOTATION(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) FQBERT_THREAD_ANNOTATION(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  FQBERT_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace fqbert {

/// std::mutex with the `capability` attribute, so GUARDED_BY / REQUIRES
/// can name it. Same cost, same semantics; native() exposes the
/// underlying std::mutex for std::condition_variable interop only —
/// never lock through native() directly, the analysis cannot see it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex, visible to the analysis as a scoped
/// capability. Holds a std::unique_lock so condition-variable waits
/// work through native(): cv.wait(lock.native()) releases and
/// reacquires the mutex, which the analysis models as the capability
/// being held across the wait — exactly the invariant the surrounding
/// code relies on.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace fqbert
